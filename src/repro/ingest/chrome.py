"""Tolerant Chrome trace-event parser.

Two reconstruction paths out of one record stream:

* **Lossless** -- the input carries the ``repro-chrome-raw-1`` sidecar
  that :func:`repro.obs.export.trace_chrome_events` embeds with
  ``embed_raw=True``: a ``repro_trace`` metadata header (mode, location
  table, region table) plus one ``cat:"repro.raw"`` instant per engine
  event.  Every field is validated against the aux/delta conventions of
  :mod:`repro.measure.columnar`; the rebuilt :class:`PendingTrace` is
  bit-identical to the original archive when the input is undamaged.
* **Foreign** -- any other Chrome trace (``X`` complete events and
  ``B``/``E`` duration pairs, as produced by browsers, TensorFlow,
  ``chrome://tracing`` exporters...).  Intervals are normalised into a
  properly nested ENTER/LEAVE forest per ``(pid, tid)`` location,
  microseconds become seconds, and the trace is labelled mode ``tsc``
  (foreign timestamps are physical; no logical counters survive export).

The record *scanner* never trusts the container: strict ``json.loads``
first, then a string-aware balanced-brace walk that skips damaged
chunks (ING003) and detects a truncated tail (ING004).  A corrupt raw
sidecar degrades to the foreign path instead of rejecting -- the visible
events are usually still salvageable.
"""

from __future__ import annotations

import json
import math
from typing import List, Optional, Tuple

from repro.ingest.limits import IngestBudget
from repro.ingest.report import IngestReport
from repro.ingest.salvage import PendingTrace
from repro.measure.config import MODES
from repro.obs.export import CHROME_RAW_FORMAT
from repro.sim.events import (
    BURST,
    COLL_END,
    ENTER,
    EVENT_NAMES,
    FAULT,
    FORK,
    JOIN,
    LEAVE,
    MPI_RECV,
    MPI_SEND,
    OBAR_ENTER,
    OBAR_LEAVE,
    RESTART,
    TEAM_BEGIN,
    EMPTY_DELTA,
    Ev,
    RegionRegistry,
    WorkDelta,
)

__all__ = ["parse_chrome"]

_NAME_TO_ETYPE = {name: et for et, name in EVENT_NAMES.items()}
_PAIR_AUX = (MPI_SEND, COLL_END, OBAR_LEAVE, RESTART)
_SCALAR_AUX = (MPI_RECV, FORK, JOIN, TEAM_BEGIN, FAULT)
_DELTA_FIELDS = ("omp_iters", "bb", "stmt", "instr", "burst_calls",
                 "omp_calls")
_US = 1e-6  # Chrome timestamps are microseconds


class _SidecarCorrupt(Exception):
    """The embedded raw sidecar is unusable; fall back to visible events."""


def _is_num(x) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool) \
        and math.isfinite(x)


def _is_int(x) -> bool:
    return isinstance(x, int) and not isinstance(x, bool)


# -- record extraction ---------------------------------------------------

def _scan_objects(text: str, start: int, report: IngestReport,
                  budget: IngestBudget) -> List[dict]:
    """Walk ``text`` from ``start`` collecting top-level ``{...}`` objects.

    String-aware: braces inside JSON strings do not count.  A chunk that
    fails to parse is dropped (counted, one ING003 diagnostic at the
    end); hitting EOF inside an object marks the tail truncated (ING004).
    Stops at the ``]`` that closes the enclosing array, when present.
    """
    records: List[dict] = []
    bad = 0
    truncated = False
    i, n = start, len(text)
    while i < n:
        c = text[i]
        if c == "]":
            break
        if c != "{":
            i += 1
            continue
        # balanced walk from the opening brace
        depth = 0
        in_str = False
        esc = False
        j = i
        end = -1
        while j < n:
            ch = text[j]
            if in_str:
                if esc:
                    esc = False
                elif ch == "\\":
                    esc = True
                elif ch == '"':
                    in_str = False
            elif ch == '"':
                in_str = True
            elif ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                if depth == 0:
                    end = j + 1
                    break
            j += 1
        if end < 0:
            truncated = True
            break
        try:
            obj = json.loads(text[i:end])
        except ValueError:
            obj = None
        if isinstance(obj, dict):
            records.append(obj)
            budget.charge_events(1)
        else:
            bad += 1
        i = end
    if bad:
        report.n_dropped += bad
        report.repair("ING003",
                      f"dropped {bad} unparseable record(s) during "
                      f"tolerant scan")
    if truncated:
        report.repair("ING004",
                      "input ends mid-record; truncated tail discarded")
    return records


def _extract_records(text: str, report: IngestReport,
                     budget: IngestBudget) -> List[dict]:
    """All record dicts in ``text``, tolerating a damaged container."""
    try:
        doc = json.loads(text)
    except ValueError:
        doc = None
    if doc is not None:
        if isinstance(doc, dict):
            events = doc.get("traceEvents")
        elif isinstance(doc, list):
            events = doc
        else:
            events = None
        if not isinstance(events, list):
            report.reject("ING002",
                          "valid JSON but not a Chrome trace (no "
                          "traceEvents array)")
            raise ValueError("not a chrome trace container")
        records = []
        bad = 0
        for rec in events:
            if isinstance(rec, dict):
                records.append(rec)
                budget.charge_events(1)
            else:
                bad += 1
        if bad:
            report.n_dropped += bad
            report.repair("ING003",
                          f"dropped {bad} non-object record(s)")
        return records

    # container damaged: scan for records inside the traceEvents array,
    # a bare array, or concatenated / line-delimited objects
    key = text.find('"traceEvents"')
    if key >= 0:
        start = text.find("[", key)
        if start >= 0:
            return _scan_objects(text, start + 1, report, budget)
    stripped = text.lstrip()
    if stripped.startswith("["):
        offset = len(text) - len(stripped)
        return _scan_objects(text, offset + 1, report, budget)
    if stripped.startswith("{"):
        return _scan_objects(text, len(text) - len(stripped), report,
                             budget)
    report.reject("ING002", "input is neither valid JSON nor a "
                            "recognizable Chrome trace fragment")
    raise ValueError("unrecognized container")


# -- lossless reconstruction from the repro.raw sidecar ------------------

def _validate_header(args: dict, budget: IngestBudget):
    """Decode the ``repro_trace`` header; :class:`_SidecarCorrupt` if bad."""
    if not isinstance(args, dict):
        raise _SidecarCorrupt("header args is not an object")
    if args.get("format") != CHROME_RAW_FORMAT:
        raise _SidecarCorrupt(
            f"unknown sidecar format {args.get('format')!r}")
    mode = args.get("mode")
    if not isinstance(mode, str) or mode not in MODES:
        raise _SidecarCorrupt(f"unknown mode {mode!r}")
    locs = args.get("locations")
    if not isinstance(locs, list):
        raise _SidecarCorrupt("locations is not a list")
    budget.check_locations(len(locs))
    locations: List[Tuple[int, int]] = []
    for entry in locs:
        if (not isinstance(entry, (list, tuple)) or len(entry) != 2
                or not _is_int(entry[0]) or not _is_int(entry[1])
                or entry[0] < 0 or entry[1] < 0):
            raise _SidecarCorrupt(f"bad location entry {entry!r}")
        locations.append((entry[0], entry[1]))
    if len(set(locations)) != len(locations):
        raise _SidecarCorrupt("duplicate (rank, thread) location")
    names = args.get("regions")
    paradigms = args.get("paradigms")
    if (not isinstance(names, list) or not isinstance(paradigms, list)
            or len(names) != len(paradigms)):
        raise _SidecarCorrupt("region/paradigm tables malformed")
    budget.check_regions(len(names))
    regions = RegionRegistry()
    for name, paradigm in zip(names, paradigms):
        if not isinstance(name, str) or not isinstance(paradigm, str):
            raise _SidecarCorrupt("non-string region entry")
        if regions.intern(name, paradigm) != len(regions) - 1:
            raise _SidecarCorrupt(f"duplicate region name {name!r}")
    runtime = args.get("runtime")
    if not _is_num(runtime) or runtime < 0:
        runtime = 0.0
    return mode, regions, locations, float(runtime)


def _decode_raw_event(args: dict, n_locs: int, n_regions: int):
    """One ``cat:"repro.raw"`` record -> ``(loc, Ev)``, or ``None`` if bad."""
    if not isinstance(args, dict):
        return None
    loc = args.get("loc")
    et = args.get("etype")
    region = args.get("region")
    t = args.get("t")
    if (not _is_int(loc) or not 0 <= loc < n_locs
            or not _is_int(et) or et not in EVENT_NAMES
            or not _is_int(region) or not -1 <= region < n_regions
            or not _is_num(t)):
        return None
    t_enter = args.get("t_enter", 0.0)
    if not _is_num(t_enter):
        return None
    aux = args.get("aux")
    if et in _PAIR_AUX:
        if (not isinstance(aux, (list, tuple)) or len(aux) != 2
                or not _is_int(aux[0]) or not _is_int(aux[1])):
            return None
        aux = (aux[0], aux[1])
    elif et in _SCALAR_AUX:
        if not _is_int(aux):
            return None
    elif aux is not None:
        return None
    delta = args.get("delta")
    if delta is None:
        wd = EMPTY_DELTA
    else:
        if not isinstance(delta, dict):
            return None
        kw = {}
        for k, v in delta.items():
            if k not in _DELTA_FIELDS or not _is_num(v) or v < 0:
                return None
            kw[k] = float(v)
        wd = WorkDelta(**kw) if kw else EMPTY_DELTA
    return loc, Ev(et, region, float(t), wd, aux, float(t_enter))


def _reconstruct_lossless(header_args: dict, raw_records: List[dict],
                          report: IngestReport,
                          budget: IngestBudget) -> PendingTrace:
    mode, regions, locations, runtime = _validate_header(header_args,
                                                         budget)
    events: List[List[Ev]] = [[] for _ in locations]
    bad = 0
    for rec in raw_records:
        decoded = _decode_raw_event(rec.get("args"), len(locations),
                                    len(regions))
        if decoded is None:
            bad += 1
            continue
        loc, ev = decoded
        events[loc].append(ev)
    if raw_records and bad == len(raw_records):
        raise _SidecarCorrupt("every raw record is malformed")
    if bad:
        report.n_dropped += bad
        report.repair("ING003",
                      f"dropped {bad} malformed raw record(s)")
    report.n_records += len(raw_records) - bad
    return PendingTrace(mode=mode, regions=regions, locations=locations,
                        events=events, runtime=runtime)


# -- foreign reconstruction from visible X / B / E events ----------------

def _collect_intervals(records: List[dict], report: IngestReport):
    """Group usable duration events into per-``(pid, tid)`` intervals.

    Returns ``{(pid, tid): [(t0, t1, name), ...]}`` in seconds.  ``B``
    events are closed by the next ``E`` on the same location (Chrome
    semantics: ``E`` closes the innermost open slice); stray ``E`` s are
    dropped, unclosed ``B`` s are closed at the location's last
    timestamp and counted as an ING009 repair.
    """
    intervals = {}
    open_b = {}
    last_ts = {}
    bad = 0
    stray_e = 0
    unclosed = 0
    for rec in records:
        ph = rec.get("ph")
        if ph not in ("X", "B", "E"):
            continue  # metadata, counters, instants: valid but not trace
        ts = rec.get("ts")
        pid = rec.get("pid", 0)
        tid = rec.get("tid", 0)
        if not _is_num(ts) or not _is_int(pid) or not _is_int(tid):
            bad += 1
            continue
        key = (pid, tid)
        t0 = ts * _US
        last_ts[key] = max(last_ts.get(key, t0), t0)
        if ph == "X":
            dur = rec.get("dur", 0.0)
            name = rec.get("name")
            if not _is_num(dur) or dur < 0 or not isinstance(name, str):
                bad += 1
                continue
            t1 = t0 + dur * _US
            intervals.setdefault(key, []).append((t0, t1, name))
            last_ts[key] = max(last_ts[key], t1)
        elif ph == "B":
            name = rec.get("name")
            if not isinstance(name, str):
                bad += 1
                continue
            open_b.setdefault(key, []).append((t0, name))
        else:  # "E"
            stack = open_b.get(key)
            if not stack:
                stray_e += 1
                continue
            t0_open, name = stack.pop()
            intervals.setdefault(key, []).append(
                (t0_open, max(t0, t0_open), name))
    for key, stack in open_b.items():
        while stack:
            t0_open, name = stack.pop()
            t1 = max(last_ts.get(key, t0_open), t0_open)
            intervals.setdefault(key, []).append((t0_open, t1, name))
            unclosed += 1
    if bad:
        report.n_dropped += bad
        report.repair("ING003",
                      f"dropped {bad} malformed duration event(s)")
    if stray_e:
        report.n_dropped += stray_e
        report.repair("ING009",
                      f"dropped {stray_e} 'E' event(s) with no open 'B'")
    if unclosed:
        report.repair("ING009",
                      f"closed {unclosed} unterminated 'B' event(s) at "
                      f"the location's last timestamp")
    return intervals


def _nest_intervals(pairs, regions: RegionRegistry, report: IngestReport,
                    loc: int) -> List[Ev]:
    """Turn possibly-overlapping intervals into a nested ENTER/LEAVE list.

    Sorted by ``(t0, -t1)`` so an enclosing interval precedes its
    children; a child overhanging its parent is clamped to the parent's
    end (one ING009 diagnostic per location, occurrences counted).
    """
    pairs = sorted(pairs, key=lambda p: (p[0], -p[1]))
    out: List[Ev] = []
    stack: List[Tuple[int, float]] = []  # (region id, t_end)
    clamped = 0

    def pop_until(t: float) -> None:
        while stack and stack[-1][1] <= t:
            rid, t_end = stack.pop()
            out.append(Ev(LEAVE, rid, t_end))

    for t0, t1, name in pairs:
        pop_until(t0)
        if stack and t1 > stack[-1][1]:
            t1 = stack[-1][1]
            clamped += 1
        rid = regions.intern(name)
        out.append(Ev(ENTER, rid, t0))
        stack.append((rid, max(t1, t0)))
    pop_until(math.inf)
    if clamped:
        report.repair(
            "ING009",
            f"clamped {clamped} overlapping interval(s) to proper "
            f"nesting", location=loc)
    return out


def _reconstruct_foreign(records: List[dict], report: IngestReport,
                         budget: IngestBudget) -> PendingTrace:
    intervals = _collect_intervals(records, report)
    if not intervals:
        report.reject("ING002", "input contains no usable trace events")
        raise ValueError("no trace events")
    keys = sorted(intervals)
    budget.check_locations(len(keys))
    pids = sorted({pid for pid, _tid in keys})
    rank_of = {pid: i for i, pid in enumerate(pids)}
    locations: List[Tuple[int, int]] = []
    for pid in pids:
        tids = sorted(tid for p, tid in keys if p == pid)
        for thread, _tid in enumerate(tids):
            locations.append((rank_of[pid], thread))
    loc_of = {}
    for pid in pids:
        tids = sorted(tid for p, tid in keys if p == pid)
        for thread, tid in enumerate(tids):
            loc_of[(pid, tid)] = locations.index((rank_of[pid], thread))
    regions = RegionRegistry()
    events: List[List[Ev]] = [[] for _ in locations]
    runtime = 0.0
    for key in keys:
        loc = loc_of[key]
        evs = _nest_intervals(intervals[key], regions, report, loc)
        budget.check_regions(len(regions))
        events[loc] = evs
        if evs:
            runtime = max(runtime, evs[-1].t)
        report.n_records += len(intervals[key])
    return PendingTrace(mode="tsc", regions=regions, locations=locations,
                        events=events, runtime=runtime)


# -- entry point ---------------------------------------------------------

def parse_chrome(text: str, report: IngestReport,
                 budget: IngestBudget) -> PendingTrace:
    """Parse Chrome trace-event JSON into a :class:`PendingTrace`.

    Prefers the lossless ``repro.raw`` sidecar when present and intact;
    otherwise reconstructs from visible duration events.  Raises
    ``ValueError`` after recording an ING rejection when nothing usable
    remains.
    """
    records = _extract_records(text, report, budget)
    header: Optional[dict] = None
    raw: List[dict] = []
    visible: List[dict] = []
    for rec in records:
        if rec.get("cat") == "repro.raw":
            raw.append(rec)
        elif (rec.get("name") == "repro_trace"
                and rec.get("cat") == "repro.meta" and header is None):
            header = rec.get("args")
        else:
            visible.append(rec)
    if header is not None:
        try:
            return _reconstruct_lossless(header, raw, report, budget)
        except _SidecarCorrupt as exc:
            report.repair("ING003",
                          f"embedded raw sidecar unusable ({exc}); "
                          f"reconstructing from visible events")
    return _reconstruct_foreign(visible, report, budget)
