"""Replay ingested traces and programs through the simulator.

Two replay surfaces, matching the two things ingestion can produce:

* :func:`replay_clock_finals` -- run an ingested :class:`RawTrace`
  through the logical-clock replay (:func:`repro.clocks.timestamp_trace`)
  under any measurement mode and return the per-location final
  timestamps.  For a clean re-ingested ``embed_raw`` Chrome export this
  is bit-identical to replaying the original archive: ingestion
  round-trips every ``t``/delta field through JSON ``repr``, which is
  exact for float64.
* :func:`replay_program` -- execute an ingested comm-op program on a
  synthetic cluster with the full engine, optionally under measurement,
  OS noise and fault injection.  Untrusted op lists reach this point
  only after the lint gate, so the engine never deadlocks on them.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.clocks.base import timestamp_trace
from repro.machine.noise import NoiseConfig, NoiseModel, ZeroNoise
from repro.machine.presets import small_test_cluster
from repro.measure import Measurement
from repro.measure.trace import RawTrace
from repro.sim import CostModel
from repro.sim.engine import Engine

__all__ = ["replay_clock_finals", "replay_program", "make_replay_cluster",
           "clock_finals_by_location"]


def replay_clock_finals(trace: RawTrace, mode: Optional[str] = None,
                        counter_seed: int = 0) -> List[float]:
    """Final timestamp of every location under ``mode``'s clock.

    ``mode`` defaults to the trace's own mode.  Empty locations report
    ``0.0``.
    """
    stamped = timestamp_trace(trace, mode=mode, counter_seed=counter_seed)
    return [times[-1] if len(times) else 0.0 for times in stamped.times]


def make_replay_cluster(n_ranks: int, threads_per_rank: int = 1):
    """A test cluster just large enough to host ``n_ranks`` ranks."""
    need = max(1, n_ranks * threads_per_rank)
    # small_test_cluster yields cores_per_numa * numa_per_socket cores
    cores_per_numa = max(2, -(-need // 2))
    return small_test_cluster(n_nodes=1, cores_per_numa=cores_per_numa,
                              numa_per_socket=2, sockets_per_node=1)


def replay_program(
    program,
    mode: Optional[str] = None,
    seed: int = 1,
    noise_config: Optional[NoiseConfig] = None,
    faults=None,
    cluster=None,
    sanitize: bool = True,
):
    """Run an ingested program through the engine; returns ``SimResult``.

    ``mode=None`` runs uninstrumented; any measurement mode attaches a
    :class:`~repro.measure.Measurement`.  ``noise_config=None`` keeps
    the machine deterministic (``ZeroNoise``); pass a
    :class:`~repro.machine.noise.NoiseConfig` to enable OS noise drawn
    from ``seed``.  ``faults`` takes a
    :class:`~repro.machine.faults.FaultModel`.
    """
    if cluster is None:
        cluster = make_replay_cluster(program.n_ranks,
                                      program.threads_per_rank)
    noise = NoiseModel(noise_config if noise_config is not None
                       else ZeroNoise(), seed=seed)
    cost = CostModel(cluster, noise=noise)
    measurement = Measurement(mode) if mode is not None else None
    engine = Engine(program, cluster, cost, measurement=measurement,
                    sanitize=sanitize and measurement is not None,
                    faults=faults)
    return engine.run()


def clock_finals_by_location(trace: RawTrace, modes,
                             counter_seed: int = 0) -> Dict[str, List[float]]:
    """``{mode: finals}`` for each requested mode (convenience helper)."""
    return {mode: replay_clock_finals(trace, mode, counter_seed)
            for mode in modes}
