"""Seeded corpus-mutation fuzzer for the ingestion pipeline.

The harness asserts the pipeline's contract on every mutated input:
*parse*, *repair-with-report*, or *reject-with-diagnostic* -- never an
uncaught exception, never a hang (a short wall-clock deadline is part of
the limits under test), and never an accepted trace the sanitizer
rejects.  Fully deterministic: the corpus is generated from fixed
engine runs and every mutation is drawn from a seeded PRNG, so a
failing seed reproduces exactly.

Run via ``repro-ingest fuzz`` or :func:`run_fuzz` directly; the bounded
default budget also runs inside the test suite and CI.
"""

from __future__ import annotations

import gzip
import json
import random
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.ingest.limits import IngestLimits
from repro.ingest.pipeline import IngestError, ingest_bytes
from repro.verify.sanitizer import sanitize_raw
from repro.verify.rules import RULES, Severity

__all__ = ["FuzzFailure", "FuzzStats", "build_corpus", "mutate",
           "run_fuzz", "MUTATORS"]

#: limits used while fuzzing: small enough that cap handling is
#: exercised and a hang is caught quickly, large enough that the corpus
#: itself is accepted unmutated
FUZZ_LIMITS = IngestLimits(
    max_bytes=8 * 1024 * 1024,
    max_events=200_000,
    max_locations=256,
    max_regions=4096,
    max_ranks=256,
    timeout_seconds=20.0,
)


@dataclass
class FuzzFailure:
    """One contract violation (kept for the report; fails the run)."""

    seed: int
    corpus: str
    mutator: str
    reason: str
    blob_head: bytes


@dataclass
class FuzzStats:
    """Tally of one fuzzing run."""

    n_inputs: int = 0
    accepted: int = 0
    repaired: int = 0
    rejected: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    rule_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def format(self) -> str:
        lines = [
            f"fuzz: {self.n_inputs} input(s) -> {self.accepted} accepted "
            f"clean, {self.repaired} repaired, {self.rejected} rejected, "
            f"{len(self.failures)} contract violation(s)"
        ]
        for rid in sorted(self.rule_counts):
            lines.append(f"  {rid}: {self.rule_counts[rid]}")
        for f in self.failures[:10]:
            lines.append(f"  FAIL seed={f.seed} corpus={f.corpus} "
                         f"mutator={f.mutator}: {f.reason}")
        return "\n".join(lines)


# -- corpus --------------------------------------------------------------

def _engine_trace():
    from repro.machine.noise import NoiseModel, ZeroNoise
    from repro.machine.presets import small_test_cluster
    from repro.measure import Measurement
    from repro.miniapps.minife import MiniFE, MiniFEConfig
    from repro.sim import CostModel
    from repro.sim.engine import Engine

    cluster = small_test_cluster(cores_per_numa=8, numa_per_socket=2)
    program = MiniFE(MiniFEConfig.tiny(nx=16, cg_iters=2))
    cost = CostModel(cluster, noise=NoiseModel(ZeroNoise(), seed=1))
    engine = Engine(program, cluster, cost,
                    measurement=Measurement("lt1"))
    return engine.run().trace


def build_corpus() -> List[Tuple[str, bytes]]:
    """Deterministic seed inputs: one per format/container variant."""
    from repro.obs.export import trace_chrome_events

    trace = _engine_trace()
    lossless = json.dumps(
        {"traceEvents": list(trace_chrome_events(trace,
                                                 embed_raw=True))}).encode()
    foreign = json.dumps(
        {"traceEvents": list(trace_chrome_events(trace))}).encode()

    ops = []
    for rank in range(4):
        peer = rank ^ 1
        ops += [
            {"rank": rank, "op": "enter", "region": "step"},
            {"rank": rank, "op": "compute", "seconds": 1e-4},
            {"rank": rank, "op": "isend", "peer": peer, "tag": 7,
             "bytes": 4096},
            {"rank": rank, "op": "irecv", "peer": peer, "tag": 7},
            {"rank": rank, "op": "waitall"},
            {"rank": rank, "op": "allreduce", "bytes": 8},
            {"rank": rank, "op": "leave", "region": "step"},
            {"rank": rank, "op": "barrier"},
        ]
    commops_doc = json.dumps(
        {"format": "repro-commops-1", "n_ranks": 4, "ops": ops}).encode()
    header = json.dumps({"format": "repro-commops-1", "n_ranks": 4})
    commops_lines = "\n".join(
        [header] + [json.dumps(op) for op in ops]).encode()

    return [
        ("chrome-lossless", lossless),
        ("chrome-foreign", foreign),
        ("commops-doc", commops_doc),
        ("commops-lines", commops_lines),
    ]


# -- mutators ------------------------------------------------------------

def _mut_truncate(data: bytes, rng: random.Random) -> bytes:
    if len(data) < 2:
        return data
    return data[:rng.randrange(1, len(data))]


def _mut_bitflip(data: bytes, rng: random.Random) -> bytes:
    if not data:
        return data
    out = bytearray(data)
    for _ in range(rng.randrange(1, 9)):
        i = rng.randrange(len(out))
        out[i] ^= 1 << rng.randrange(8)
    return bytes(out)


def _lines(data: bytes) -> List[bytes]:
    return data.split(b"\n") if b"\n" in data else data.split(b",")


def _mut_drop_chunk(data: bytes, rng: random.Random) -> bytes:
    parts = _lines(data)
    if len(parts) < 2:
        return data
    del parts[rng.randrange(len(parts))]
    sep = b"\n" if b"\n" in data else b","
    return sep.join(parts)


def _mut_duplicate_chunk(data: bytes, rng: random.Random) -> bytes:
    parts = _lines(data)
    if len(parts) < 2:
        return data
    i = rng.randrange(len(parts))
    parts.insert(i, parts[i])
    sep = b"\n" if b"\n" in data else b","
    return sep.join(parts)


def _mut_shuffle_chunks(data: bytes, rng: random.Random) -> bytes:
    parts = _lines(data)
    if len(parts) < 3:
        return data
    i = rng.randrange(len(parts) - 1)
    parts[i], parts[i + 1] = parts[i + 1], parts[i]
    sep = b"\n" if b"\n" in data else b","
    return sep.join(parts)


def _mut_splice_junk(data: bytes, rng: random.Random) -> bytes:
    junk = rng.choice([b"\x00\x01\x02", b"}{", b'"unterminated',
                       b"NaN,", b"\xff\xfe\xfd", b"]]]]"])
    i = rng.randrange(len(data) + 1)
    return data[:i] + junk + data[i:]


def _mut_rename_key(data: bytes, rng: random.Random) -> bytes:
    victims = [b'"ts"', b'"ph"', b'"rank"', b'"op"', b'"loc"',
               b'"etype"', b'"traceEvents"', b'"format"', b'"aux"']
    present = [v for v in victims if v in data]
    if not present:
        return data
    v = rng.choice(present)
    return data.replace(v, b'"zz' + v[1:], rng.randrange(1, 4))


def _mut_perturb_number(data: bytes, rng: random.Random) -> bytes:
    # find a digit run and replace it with a hostile number
    digits = [i for i, b in enumerate(data[:65536])
              if 0x30 <= b <= 0x39]
    if not digits:
        return data
    i = rng.choice(digits)
    j = i
    while j < len(data) and 0x30 <= data[j] <= 0x39:
        j += 1
    repl = rng.choice([b"-1", b"999999999999999999999", b"1e308",
                       b"0", b"42"])
    return data[:i] + repl + data[j:]


def _mut_gzip_wrap(data: bytes, rng: random.Random) -> bytes:
    blob = gzip.compress(data)
    if rng.random() < 0.5 and len(blob) > 8:
        blob = blob[:rng.randrange(4, len(blob))]  # truncated gzip
    return blob


def _mut_empty(data: bytes, rng: random.Random) -> bytes:
    return rng.choice([b"", b"{}", b"[]", b"null",
                       b'{"traceEvents": []}'])


def _mut_identity(data: bytes, rng: random.Random) -> bytes:
    return data


MUTATORS: List[Tuple[str, Callable[[bytes, random.Random], bytes]]] = [
    ("identity", _mut_identity),
    ("truncate", _mut_truncate),
    ("bitflip", _mut_bitflip),
    ("drop-chunk", _mut_drop_chunk),
    ("dup-chunk", _mut_duplicate_chunk),
    ("swap-chunks", _mut_shuffle_chunks),
    ("splice-junk", _mut_splice_junk),
    ("rename-key", _mut_rename_key),
    ("perturb-number", _mut_perturb_number),
    ("gzip-wrap", _mut_gzip_wrap),
    ("empty", _mut_empty),
]


def mutate(data: bytes, seed: int) -> Tuple[str, bytes]:
    """Apply 1-3 seeded mutations; returns ``(mutator_names, blob)``."""
    rng = random.Random(seed)
    names = []
    for _ in range(rng.randrange(1, 4)):
        name, fn = rng.choice(MUTATORS)
        data = fn(data, rng)
        names.append(name)
    return "+".join(names), data


# -- harness -------------------------------------------------------------

def _check_one(corpus_name: str, mutator: str, blob: bytes, seed: int,
               stats: FuzzStats,
               limits: IngestLimits) -> Optional[FuzzFailure]:
    stats.n_inputs += 1
    try:
        result = ingest_bytes(blob, name=f"fuzz-{seed}", limits=limits)
    except IngestError as exc:
        stats.rejected += 1
        errors = [d for d in exc.report.rejections
                  if d.rule_id.startswith("ING")
                  and RULES[d.rule_id].severity == Severity.ERROR]
        for d in exc.report.rejections + exc.report.repairs:
            stats.rule_counts[d.rule_id] = \
                stats.rule_counts.get(d.rule_id, 0) + 1
        if not errors:
            return FuzzFailure(seed, corpus_name, mutator,
                               "rejection without an ING error "
                               "diagnostic", blob[:64])
        return None
    except Exception as exc:  # noqa: BLE001 -- this IS the bug detector
        return FuzzFailure(seed, corpus_name, mutator,
                           f"uncaught {type(exc).__name__}: {exc}",
                           blob[:64])
    if result.report.repairs:
        stats.repaired += 1
    else:
        stats.accepted += 1
    for d in result.report.repairs:
        stats.rule_counts[d.rule_id] = \
            stats.rule_counts.get(d.rule_id, 0) + 1
    if result.kind == "trace":
        residual = [d for d in sanitize_raw(result.trace)
                    if RULES[d.rule_id].severity == Severity.ERROR]
        if residual:
            return FuzzFailure(
                seed, corpus_name, mutator,
                f"accepted trace fails the sanitizer: "
                f"[{residual[0].rule_id}] {residual[0].message}",
                blob[:64])
    return None


def run_fuzz(n_per_corpus: int = 200, seed: int = 0,
             limits: Optional[IngestLimits] = None,
             corpus: Optional[List[Tuple[str, bytes]]] = None,
             progress: Optional[Callable[[str], None]] = None) -> FuzzStats:
    """Fuzz every corpus entry with ``n_per_corpus`` seeded mutations.

    Returns the tally; ``stats.ok`` is the pass/fail verdict.  The same
    ``(seed, n_per_corpus)`` always replays the same inputs.
    """
    limits = limits or FUZZ_LIMITS
    corpus = corpus if corpus is not None else build_corpus()
    stats = FuzzStats()
    for corpus_name, base in corpus:
        for k in range(n_per_corpus):
            case_seed = (seed * 1_000_003
                         + zlib.crc32(corpus_name.encode()) % 65536
                         + k * 7919)
            mutator, blob = mutate(base, case_seed)
            failure = _check_one(corpus_name, mutator, blob, case_seed,
                                 stats, limits)
            if failure is not None:
                stats.failures.append(failure)
        if progress is not None:
            progress(f"{corpus_name}: {stats.n_inputs} done, "
                     f"{len(stats.failures)} failure(s)")
    return stats
