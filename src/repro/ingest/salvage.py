"""Salvage: repair recoverable damage in a parsed foreign trace.

The parsers (:mod:`repro.ingest.chrome`) deliver a mutable
:class:`PendingTrace` that may violate any invariant the sanitizer
checks -- hostile input is assumed.  :func:`salvage_trace` runs a fixed
sequence of repair passes, records every repair as an ING diagnostic in
the :class:`~repro.ingest.report.IngestReport`, and finishes by running
the real :func:`repro.verify.sanitize_raw` over the result: the repaired
trace is *accepted only if the sanitizer finds no errors*.  Repairs that
do not converge within a bounded number of passes reject with ING014 --
the pipeline never emits a trace the sanitizer would refuse.

Pass order (later passes may re-trigger earlier ones, hence the loop):

1. duplicate drop -- unique-id records (match ids, group members) kept
   first-wins (ING011);
2. ENTER/LEAVE balance -- stray LEAVEs dropped, missing LEAVEs
   synthesized (ING009);
3. message matching -- orphaned sends/receives dropped (ING006),
   dangling FAULT/TEAM_BEGIN references dropped (ING012);
4. a timestamp loop to fixpoint: group size correction and completion-
   time alignment (ING007), per-location skew shift (ING008), per-edge
   causality bumps (recv strictly after send), and per-location
   monotonicity clamps (ING005).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ingest.limits import IngestBudget, IngestCapError
from repro.ingest.report import IngestReport
from repro.measure.trace import RawTrace
from repro.sim.events import (
    BURST,
    COLL_END,
    ENTER,
    FAULT,
    FORK,
    LEAVE,
    MPI_RECV,
    MPI_SEND,
    OBAR_LEAVE,
    RESTART,
    TEAM_BEGIN,
    Ev,
    RegionRegistry,
)

__all__ = ["PendingTrace", "salvage_trace"]

#: timestamp-loop iterations before salvage gives up with ING014
_MAX_PASSES = 10
#: incoming causality violations on one location before the whole
#: location is shifted (ING008) instead of bumping edges one by one
_SKEW_MIN_EDGES = 3


@dataclass
class PendingTrace:
    """Mutable trace under repair (pre-:class:`RawTrace`)."""

    mode: str
    regions: RegionRegistry
    locations: List[Tuple[int, int]]
    events: List[List[Ev]] = field(default_factory=list)
    runtime: float = 0.0


def _bump(t: float) -> float:
    """Smallest float strictly greater than ``t``."""
    return math.nextafter(t, math.inf)


def _drop_duplicates(p: PendingTrace, report: IngestReport) -> None:
    """Keep the first record for every must-be-unique id (ING011)."""
    seen_send: set = set()
    seen_recv: set = set()
    seen_member: set = set()  # (loc, etype, gid)
    for loc, evs in enumerate(p.events):
        kept: List[Ev] = []
        seen_exact: set = set()
        dropped = 0
        for ev in evs:
            et = ev.etype
            # a byte-for-byte repeat of an earlier event on the same
            # location (classic duplicated-record damage) is never
            # legitimate: the engine strictly orders a location's events
            d = ev.delta
            fingerprint = (et, ev.region, ev.t, ev.t_enter, ev.aux,
                           d.omp_iters, d.bb, d.stmt, d.instr,
                           d.burst_calls, d.omp_calls)
            if fingerprint in seen_exact:
                dropped += 1
                continue
            seen_exact.add(fingerprint)
            if et == MPI_SEND:
                key = ev.aux[0]
                if key in seen_send:
                    dropped += 1
                    continue
                seen_send.add(key)
            elif et == MPI_RECV:
                if ev.aux in seen_recv:
                    dropped += 1
                    continue
                seen_recv.add(ev.aux)
            elif et in (COLL_END, OBAR_LEAVE, RESTART):
                key = (loc, et, ev.aux[0])
                if key in seen_member:
                    dropped += 1
                    continue
                seen_member.add(key)
            elif et in (FORK, TEAM_BEGIN):
                key = (loc, et, ev.aux)
                if key in seen_member:
                    dropped += 1
                    continue
                seen_member.add(key)
            kept.append(ev)
        if dropped:
            p.events[loc] = kept
            report.n_dropped += dropped
            report.repair("ING011",
                          f"dropped {dropped} duplicate record(s)",
                          location=loc)


def _repair_balance(p: PendingTrace, report: IngestReport) -> None:
    """Make every location's ENTER/LEAVE stack balance (ING009)."""
    for loc, evs in enumerate(p.events):
        stack: List[int] = []
        out: List[Ev] = []
        dropped = synthesized = 0
        for ev in evs:
            et = ev.etype
            if et == ENTER:
                stack.append(ev.region)
            elif et == LEAVE:
                if not stack or ev.region not in stack:
                    dropped += 1
                    continue
                # close intervening regions so this LEAVE matches its ENTER
                while stack and stack[-1] != ev.region:
                    out.append(Ev(LEAVE, stack.pop(), ev.t))
                    synthesized += 1
                stack.pop()
            out.append(ev)
        t_end = out[-1].t if out else 0.0
        while stack:
            out.append(Ev(LEAVE, stack.pop(), t_end))
            synthesized += 1
        if dropped or synthesized:
            p.events[loc] = out
            report.n_dropped += dropped
            report.repair(
                "ING009",
                f"dropped {dropped} stray LEAVE(s), synthesized "
                f"{synthesized} missing LEAVE(s)",
                location=loc)


def _repair_matching(p: PendingTrace, report: IngestReport) -> None:
    """Pair every match id exactly once; drop orphans and dangling refs."""
    sends: Dict[int, int] = {}
    recvs: Dict[int, int] = {}
    for loc, evs in enumerate(p.events):
        for ev in evs:
            if ev.etype == MPI_SEND:
                sends[ev.aux[0]] = loc
            elif ev.etype == MPI_RECV:
                recvs[ev.aux] = loc
    orphan_sends = set(sends) - set(recvs)
    orphan_recvs = set(recvs) - set(sends)
    matched = set(recvs) & set(sends)
    for loc, evs in enumerate(p.events):
        kept: List[Ev] = []
        unmatched = dangling = 0
        for ev in evs:
            et = ev.etype
            if et == MPI_SEND and ev.aux[0] in orphan_sends:
                unmatched += 1
                continue
            if et == MPI_RECV and ev.aux in orphan_recvs:
                unmatched += 1
                continue
            if et == FAULT and ev.aux not in matched:
                dangling += 1
                continue
            kept.append(ev)
        if unmatched or dangling:
            p.events[loc] = kept
            report.n_dropped += unmatched + dangling
            if unmatched:
                report.repair(
                    "ING006",
                    f"dropped {unmatched} unmatched send/receive "
                    "record(s)", location=loc)
            if dangling:
                report.repair(
                    "ING012",
                    f"dropped {dangling} FAULT marker(s) referencing "
                    "messages without receive records", location=loc)


def _repair_team_begins(p: PendingTrace, report: IngestReport) -> None:
    """Drop TEAM_BEGIN records whose FORK never made it (ING012)."""
    forks = {ev.aux for evs in p.events for ev in evs if ev.etype == FORK}
    for loc, evs in enumerate(p.events):
        kept = [ev for ev in evs
                if not (ev.etype == TEAM_BEGIN and ev.aux not in forks)]
        if len(kept) != len(evs):
            n = len(evs) - len(kept)
            p.events[loc] = kept
            report.n_dropped += n
            report.repair(
                "ING012",
                f"dropped {n} TEAM_BEGIN record(s) without a FORK",
                location=loc)


def _group_fixups(p: PendingTrace, report: IngestReport,
                  first_pass: bool) -> int:
    """Correct group sizes and align member times to the max (ING007).

    Returns the number of timestamp modifications (drives the fixpoint
    loop); size corrections and member drops only happen on the first
    pass so their diagnostics are not repeated.
    """
    changes = 0
    groups: Dict[Tuple[int, int], List[Tuple[int, Ev]]] = {}
    for loc, evs in enumerate(p.events):
        for ev in evs:
            if ev.etype in (COLL_END, OBAR_LEAVE):
                groups.setdefault((ev.etype, ev.aux[0]), []).append((loc, ev))
    for (et, gid), members in sorted(groups.items()):
        sizes = {ev.aux[1] for _loc, ev in members}
        if first_pass and (len(sizes) > 1 or sizes != {len(members)}):
            for _loc, ev in members:
                ev.aux = (gid, len(members))
            report.repair(
                "ING007",
                f"{'coll' if et == COLL_END else 'obar'} instance {gid}: "
                f"group size corrected to its {len(members)} present "
                "member(s)", location=members[0][0])
        t_max = max(ev.t for _loc, ev in members)
        moved = sum(1 for _loc, ev in members if ev.t != t_max)
        if moved:
            for _loc, ev in members:
                ev.t = t_max
            changes += moved
            if first_pass:
                report.repair(
                    "ING007",
                    f"{'coll' if et == COLL_END else 'obar'} instance "
                    f"{gid}: aligned {moved} member time(s) to the group "
                    f"completion at t={t_max:.9g}",
                    location=members[0][0])

    # RESTART groups must appear exactly once per rank at one time
    ranks = sorted({r for (r, _t) in p.locations})
    restarts: Dict[int, List[Tuple[int, Ev]]] = {}
    for loc, evs in enumerate(p.events):
        for ev in evs:
            if ev.etype == RESTART:
                restarts.setdefault(ev.aux[0], []).append((loc, ev))
    for gid, members in sorted(restarts.items()):
        member_ranks = sorted(p.locations[loc][0] for loc, _ev in members)
        if member_ranks != ranks:
            if first_pass:
                drop = {id(ev) for _loc, ev in members}
                for loc in range(len(p.events)):
                    before = len(p.events[loc])
                    p.events[loc] = [e for e in p.events[loc]
                                     if id(e) not in drop]
                    report.n_dropped += before - len(p.events[loc])
                report.repair(
                    "ING007",
                    f"restart {gid} does not cover every rank; its "
                    f"{len(members)} record(s) were dropped",
                    location=members[0][0])
                changes += len(members)
            continue
        if first_pass and {ev.aux[1] for _loc, ev in members} != {len(ranks)}:
            for _loc, ev in members:
                ev.aux = (gid, len(ranks))
            report.repair(
                "ING007",
                f"restart {gid}: group size corrected to {len(ranks)} "
                "rank(s)", location=members[0][0])
        t_max = max(ev.t for _loc, ev in members)
        moved = sum(1 for _loc, ev in members if ev.t != t_max)
        if moved:
            for _loc, ev in members:
                ev.t = t_max
            changes += moved
            if first_pass:
                report.repair(
                    "ING007",
                    f"restart {gid}: aligned {moved} resume time(s) to "
                    f"t={t_max:.9g}", location=members[0][0])
    return changes


def _causal_fixups(p: PendingTrace, report: IngestReport,
                   first_pass: bool) -> int:
    """Receives must come strictly after their sends in merged order."""
    send_at: Dict[int, Tuple[int, float]] = {}
    for loc, evs in enumerate(p.events):
        for ev in evs:
            if ev.etype == MPI_SEND:
                send_at[ev.aux[0]] = (loc, ev.t)
    # collect per-location violation magnitudes to detect systematic skew
    lags: Dict[int, float] = {}
    edges: Dict[int, int] = {}
    for loc, evs in enumerate(p.events):
        for ev in evs:
            if ev.etype != MPI_RECV or ev.aux not in send_at:
                continue
            send_loc, t_send = send_at[ev.aux]
            need = t_send if send_loc < loc else _bump(t_send)
            if ev.t < need:
                edges[loc] = edges.get(loc, 0) + 1
                lags[loc] = max(lags.get(loc, 0.0), need - ev.t)
    changes = 0
    for loc, n_edges in sorted(edges.items()):
        if n_edges >= _SKEW_MIN_EDGES:
            # the per-edge bump pass below mops up any rounding remainder
            shift = lags[loc]
            for ev in p.events[loc]:
                ev.t += shift
                if ev.t_enter:
                    ev.t_enter += shift
            changes += len(p.events[loc])
            if first_pass:
                report.repair(
                    "ING008",
                    f"location clock ran {lags[loc]:.3g}s behind its "
                    f"peers over {n_edges} message(s); timeline shifted "
                    "forward", location=loc)
    # per-edge bumps for the remainder
    for loc, evs in enumerate(p.events):
        for ev in evs:
            if ev.etype != MPI_RECV or ev.aux not in send_at:
                continue
            send_loc, t_send = send_at[ev.aux]
            need = t_send if send_loc < loc else _bump(t_send)
            if ev.t < need:
                ev.t = need
                changes += 1
                if first_pass:
                    report.repair(
                        "ING005",
                        f"receive of message {ev.aux} moved after its "
                        "send", location=loc)
    return changes


def _monotone_fixups(p: PendingTrace, report: IngestReport,
                     first_pass: bool) -> int:
    """Clamp per-location timestamps to non-decreasing order (ING005)."""
    changes = 0
    for loc, evs in enumerate(p.events):
        prev = -math.inf
        clamped = 0
        for ev in evs:
            if ev.etype == BURST and ev.t_enter > ev.t:
                ev.t_enter = ev.t
                clamped += 1
            if ev.t < prev:
                ev.t = prev
                clamped += 1
            prev = ev.t
        if clamped:
            changes += clamped
            if first_pass:
                report.repair(
                    "ING005",
                    f"clamped {clamped} decreasing timestamp(s) to "
                    "non-decreasing order", location=loc)
    return changes


def salvage_trace(p: PendingTrace, report: IngestReport,
                  budget: Optional[IngestBudget] = None) -> RawTrace:
    """Repair ``p`` in place and return the accepted :class:`RawTrace`.

    Raises :class:`~repro.ingest.limits.IngestCapError` on deadline
    overrun.  Appends ING014 to ``report.rejections`` and raises
    ``ValueError`` when repairs do not converge or the repaired trace
    still fails :func:`repro.verify.sanitize_raw` -- the caller turns
    that into a structured rejection.
    """
    def tick():
        if budget is not None:
            budget.check_deadline()

    _drop_duplicates(p, report)
    tick()
    _repair_balance(p, report)
    tick()
    _repair_matching(p, report)
    _repair_team_begins(p, report)
    tick()

    converged = False
    for it in range(_MAX_PASSES):
        changes = _group_fixups(p, report, first_pass=(it == 0))
        changes += _causal_fixups(p, report, first_pass=(it == 0))
        changes += _monotone_fixups(p, report, first_pass=(it == 0))
        tick()
        if not changes:
            converged = True
            break
    if not converged:
        report.reject(
            "ING014",
            f"timestamp repairs did not converge in {_MAX_PASSES} passes")
        raise ValueError("salvage did not converge")

    t_end = max((evs[-1].t for evs in p.events if evs), default=0.0)
    trace = RawTrace(
        mode=p.mode,
        regions=p.regions,
        locations=list(p.locations),
        events=p.events,
        runtime=max(p.runtime, t_end),
        pinning=None,
    )

    from repro.verify.rules import Severity
    from repro.verify.sanitizer import sanitize_raw

    residual = [d for d in sanitize_raw(trace)
                if d.severity == Severity.ERROR]
    if residual:
        worst = "; ".join(f"{d.rule_id}: {d.message}" for d in residual[:3])
        report.reject(
            "ING014",
            f"{len(residual)} sanitizer error(s) survive salvage ({worst})")
        raise ValueError("repaired trace still fails the sanitizer")
    return trace
