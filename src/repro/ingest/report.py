"""Ingestion outcome: what was parsed, repaired, dropped, or refused.

Every ingestion run produces exactly one :class:`IngestReport`.  Accepted
inputs carry the full repair history (one ING diagnostic per salvage
action); rejected inputs raise :class:`IngestError` with the same report
attached, so callers -- the CLI, the serving endpoint, the fuzzer -- see
one uniform, machine-renderable account either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.verify.diagnostics import Diagnostic, format_diagnostics
from repro.verify.rules import RULES

__all__ = ["IngestReport", "IngestError"]


@dataclass
class IngestReport:
    """Structured account of one ingestion run.

    Attributes
    ----------
    source:    input name (file path, upload name, or ``"<bytes>"``)
    fmt:       detected format: ``"chrome"`` or ``"commops"`` (``None``
               when detection itself failed)
    accepted:  the input produced a sanitizer-clean trace / lint-clean
               program
    n_records: records successfully parsed from the input
    n_dropped: records discarded (malformed, duplicate, orphaned)
    repairs:   ING warning diagnostics, one per salvage action
    rejections: ING error diagnostics (empty for accepted inputs)
    quarantine_path: where the unrecoverable input bytes were moved
               (``*.corrupt-N``), when quarantine ran
    elapsed_seconds: wall-clock spent ingesting
    """

    source: str = "<bytes>"
    fmt: Optional[str] = None
    accepted: bool = False
    n_records: int = 0
    n_dropped: int = 0
    repairs: List[Diagnostic] = field(default_factory=list)
    rejections: List[Diagnostic] = field(default_factory=list)
    quarantine_path: Optional[str] = None
    elapsed_seconds: float = 0.0

    @property
    def repaired(self) -> bool:
        return bool(self.repairs)

    def repair(self, rule_id: str, message: str, **kw) -> None:
        """Record one salvage action as an ING diagnostic."""
        self.repairs.append(Diagnostic(rule_id, message, **kw))

    def reject(self, rule_id: str, message: str, **kw) -> None:
        self.rejections.append(Diagnostic(rule_id, message, **kw))

    def rule_ids(self) -> set:
        return {d.rule_id for d in self.repairs + self.rejections}

    def to_dict(self) -> dict:
        def row(d: Diagnostic) -> dict:
            out = {"rule": d.rule_id, "severity": RULES[d.rule_id].severity,
                   "message": d.message}
            if d.location is not None:
                out["location"] = d.location
            if d.rank is not None:
                out["rank"] = d.rank
            return out

        return {
            "format": "repro-ingest-report-1",
            "source": self.source,
            "trace_format": self.fmt,
            "accepted": self.accepted,
            "n_records": self.n_records,
            "n_dropped": self.n_dropped,
            "repairs": [row(d) for d in self.repairs],
            "rejections": [row(d) for d in self.rejections],
            "quarantine_path": self.quarantine_path,
            "elapsed_seconds": self.elapsed_seconds,
        }

    def format(self) -> str:
        verdict = "accepted" if self.accepted else "REJECTED"
        if self.accepted and self.repairs:
            verdict += f" with {len(self.repairs)} repair(s)"
        head = (f"ingest {self.source} [{self.fmt or 'unknown'}]: {verdict} "
                f"({self.n_records} record(s), {self.n_dropped} dropped)")
        findings = self.rejections + self.repairs
        if not findings:
            return head
        return format_diagnostics(findings, header=head, with_hints=False)


class IngestError(Exception):
    """The input was rejected; ``report`` says exactly why.

    Every rejection carries at least one ING error diagnostic -- the
    pipeline's contract is *reject-with-diagnostic*, never a bare crash.
    """

    def __init__(self, report: IngestReport):
        super().__init__(report.format())
        self.report = report
