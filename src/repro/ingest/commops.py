"""Comm-op schema: dumpi/param-style MPI op lists -> replayable programs.

The ``repro-commops-1`` schema is a minimal interchange format for the
kind of per-rank operation logs that MPI trace converters (dumpi,
ipm, param benchmarks) emit: one record per operation, each naming its
rank, op kind, and the few fields the simulator needs.  Two container
layouts are accepted:

* a single JSON document ``{"format": "repro-commops-1", "n_ranks": N,
  "ops": [...]}``
* JSON lines: a header object on line one, one op object per line after

Ops: ``enter``/``leave`` (region), ``compute`` (seconds or units),
``send``/``isend``/``recv``/``irecv`` (peer, tag, bytes; ``"any"`` peer
on receives maps to ``MPI_ANY_SOURCE``), ``wait``/``waitall`` (implicit
request queue, oldest-first), ``allreduce``/``alltoall``/``allgather``/
``bcast``/``reduce``/``barrier``.

Salvage normalises the per-rank sequences until the whole set is
*replayable*: region stacks balanced (ING009), request discipline
repaired (ING006), unmatched point-to-point traffic trimmed (ING006),
and collective sequences truncated to the longest prefix all ranks
agree on (ING007).  The accept gate is the static program linter
(:func:`repro.verify.lint_program`) -- a salvaged op set that still
deadlocks or mismatches is rejected with ING013.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Tuple

from repro.ingest.limits import IngestBudget
from repro.ingest.report import IngestReport
from repro.sim.actions import (
    ANY_SOURCE,
    Allgather,
    Allreduce,
    Alltoall,
    Barrier,
    Bcast,
    Compute,
    Enter,
    Irecv,
    Isend,
    Leave,
    Recv,
    Reduce,
    Send,
    Wait,
    Waitall,
)
from repro.sim.kernels import KernelSpec
from repro.sim.program import Program

__all__ = ["COMMOPS_FORMAT", "ReplayProgram", "parse_commops",
           "commops_doc"]

COMMOPS_FORMAT = "repro-commops-1"

#: kernel backing ``compute`` ops; ``seconds`` are converted to units of
#: this spec (1 unit ~ 1 us of balanced flop/byte work on the test
#: cluster -- the exact rate does not matter, only that it is fixed)
INGEST_KERNEL = KernelSpec.balanced(
    "ingest_compute", flops_per_unit=2.0e3, bytes_per_unit=1.6e4)
_UNITS_PER_SECOND = 1.0e6

_P2P_OPS = ("send", "isend", "recv", "irecv")
_COLLECTIVES = ("allreduce", "alltoall", "allgather", "bcast", "reduce",
                "barrier")
_KNOWN_OPS = (("enter", "leave", "compute", "wait", "waitall")
              + _P2P_OPS + _COLLECTIVES)


def _is_num(x) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool) \
        and math.isfinite(x)


def _is_int(x) -> bool:
    return isinstance(x, int) and not isinstance(x, bool)


# -- parsing -------------------------------------------------------------

def _extract(text: str, report: IngestReport,
             budget: IngestBudget) -> Tuple[Optional[dict], List[dict]]:
    """Return ``(header, op_records)`` tolerating container damage."""
    try:
        doc = json.loads(text)
    except ValueError:
        doc = None
    if isinstance(doc, dict) and isinstance(doc.get("ops"), list):
        ops = []
        bad = 0
        for rec in doc["ops"]:
            if isinstance(rec, dict):
                ops.append(rec)
                budget.charge_events(1)
            else:
                bad += 1
        if bad:
            report.n_dropped += bad
            report.repair("ING003", f"dropped {bad} non-object op(s)")
        return doc, ops

    # JSON lines, or a damaged single document: per-line parse with a
    # balanced-brace rescue for the truncated tail
    header: Optional[dict] = None
    ops: List[dict] = []
    bad = 0
    truncated = False
    lines = text.splitlines()
    for idx, line in enumerate(lines):
        line = line.strip().rstrip(",")
        if not line or line in ("[", "]", "{", "}"):
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            if idx == len(lines) - 1:
                truncated = True
            else:
                bad += 1
            continue
        if not isinstance(obj, dict):
            bad += 1
            continue
        if obj.get("format") == COMMOPS_FORMAT and header is None:
            header = obj
        elif "op" in obj:
            ops.append(obj)
            budget.charge_events(1)
        else:
            bad += 1
    if bad:
        report.n_dropped += bad
        report.repair("ING003",
                      f"dropped {bad} unparseable line(s)")
    if truncated:
        report.repair("ING004",
                      "input ends mid-record; truncated tail discarded")
    if not ops and header is None:
        # last resort: balanced-brace rescue over the whole text (covers
        # a damaged pretty-printed document, where no single line parses)
        from repro.ingest.chrome import _scan_objects

        for obj in _scan_objects(text, 0, report, budget):
            if obj.get("format") == COMMOPS_FORMAT and header is None:
                header = obj
            elif "op" in obj:
                ops.append(obj)
    if not ops and header is None:
        report.reject("ING002", "no comm-op records found")
        raise ValueError("not a commops document")
    return header, ops


def _decode_op(rec: dict, n_ranks: int) -> Optional[Tuple[int, tuple]]:
    """Validate one op record -> ``(rank, normalized_op)`` or ``None``."""
    rank = rec.get("rank")
    kind = rec.get("op")
    if (not _is_int(rank) or not 0 <= rank < n_ranks
            or kind not in _KNOWN_OPS):
        return None
    if kind in ("enter", "leave"):
        region = rec.get("region")
        if kind == "leave" and region is None:
            return rank, (kind, None)
        if not isinstance(region, str) or not region:
            return None
        return rank, (kind, region)
    if kind == "compute":
        units = rec.get("units")
        if units is None and _is_num(rec.get("seconds")):
            units = rec["seconds"] * _UNITS_PER_SECOND
        if not _is_num(units) or units < 0:
            return None
        return rank, (kind, float(units))
    if kind in _P2P_OPS:
        peer = rec.get("peer")
        tag = rec.get("tag", 0)
        if kind in ("recv", "irecv") and peer == "any":
            peer = ANY_SOURCE
        if not _is_int(tag) or tag < 0:
            return None
        if not _is_int(peer) or peer >= n_ranks or (
                peer < 0 and peer != ANY_SOURCE):
            return None
        if peer == ANY_SOURCE and kind in ("send", "isend"):
            return None
        nbytes = rec.get("bytes", 8.0)
        if not _is_num(nbytes) or nbytes < 0:
            return None
        return rank, (kind, peer, tag, float(nbytes))
    if kind in ("wait", "waitall"):
        return rank, (kind,)
    # collectives
    nbytes = rec.get("bytes", 8.0)
    if not _is_num(nbytes) or nbytes < 0:
        return None
    root = rec.get("root", 0)
    if not _is_int(root) or not 0 <= root < n_ranks:
        root = 0
    return rank, (kind, root, float(nbytes))


# -- salvage -------------------------------------------------------------

def _balance_regions(ops: List[tuple], report: IngestReport,
                     rank: int) -> List[tuple]:
    out: List[tuple] = []
    stack: List[str] = []
    dropped = 0
    for op in ops:
        if op[0] == "enter":
            stack.append(op[1])
            out.append(op)
        elif op[0] == "leave":
            if not stack:
                dropped += 1
                continue
            top = stack.pop()
            if op[1] is not None and op[1] != top:
                # close with the region actually open
                out.append(("leave", top))
                continue
            out.append(("leave", top))
        else:
            out.append(op)
    synthesized = len(stack)
    while stack:
        out.append(("leave", stack.pop()))
    if dropped or synthesized:
        report.repair(
            "ING009",
            f"dropped {dropped} stray leave(s), synthesized "
            f"{synthesized} missing leave(s)", rank=rank)
    return out


def _repair_requests(ops: List[tuple], report: IngestReport,
                     rank: int) -> List[tuple]:
    out: List[tuple] = []
    outstanding = 0
    dropped_waits = 0
    for op in ops:
        if op[0] in ("isend", "irecv"):
            outstanding += 1
            out.append(op)
        elif op[0] == "wait":
            if outstanding == 0:
                dropped_waits += 1
                continue
            outstanding -= 1
            out.append(op)
        elif op[0] == "waitall":
            outstanding = 0
            out.append(op)
        else:
            out.append(op)
    synthesized = 0
    if outstanding:
        out.append(("waitall",))
        synthesized = outstanding
    if dropped_waits or synthesized:
        report.repair(
            "ING006",
            f"dropped {dropped_waits} wait(s) with no outstanding "
            f"request, flushed {synthesized} trailing request(s) with "
            f"a synthesized waitall", rank=rank)
    return out


def _trim_unmatched_p2p(rank_ops: List[List[tuple]],
                        report: IngestReport) -> None:
    """Drop excess sends/recvs so every channel's counts agree.

    Named traffic is matched per ``(src, dst, tag)`` channel; leftover
    sends may feed wildcard receives on their destination (per
    ``(dst, tag)``).  Excess operations are dropped from the *tail* of
    each rank's sequence (damage usually truncates tails).
    """
    sends: Dict[tuple, int] = {}
    recvs: Dict[tuple, int] = {}
    wild: Dict[tuple, int] = {}
    for rank, ops in enumerate(rank_ops):
        for op in ops:
            if op[0] in ("send", "isend"):
                sends[(rank, op[1], op[2])] = \
                    sends.get((rank, op[1], op[2]), 0) + 1
            elif op[0] in ("recv", "irecv"):
                if op[1] == ANY_SOURCE:
                    wild[(rank, op[2])] = wild.get((rank, op[2]), 0) + 1
                else:
                    recvs[(op[1], rank, op[2])] = \
                        recvs.get((op[1], rank, op[2]), 0) + 1

    drop_send: Dict[tuple, int] = {}
    drop_recv: Dict[tuple, int] = {}
    drop_wild: Dict[tuple, int] = {}
    spare: Dict[tuple, int] = {}  # sends left for wildcards, per (dst, tag)
    for chan, n_send in sends.items():
        src, dst, tag = chan
        n_recv = recvs.get(chan, 0)
        if n_send > n_recv:
            spare[(dst, tag)] = spare.get((dst, tag), 0) + n_send - n_recv
    for chan, n_recv in recvs.items():
        n_send = sends.get(chan, 0)
        if n_recv > n_send:
            drop_recv[chan] = n_recv - n_send
    for key, n_wild in wild.items():
        supply = spare.get(key, 0)
        if n_wild > supply:
            drop_wild[key] = n_wild - supply
        else:
            spare[key] = supply - n_wild
    for key, leftover in spare.items():
        dst, tag = key
        # distribute the drop over the sending channels of this (dst, tag)
        for chan in sorted(sends):
            if leftover <= 0:
                break
            if chan[1] != dst or chan[2] != tag:
                continue
            excess = sends[chan] - recvs.get(chan, 0) \
                - drop_send.get(chan, 0)
            take = min(excess, leftover)
            if take > 0:
                drop_send[chan] = drop_send.get(chan, 0) + take
                leftover -= take

    total = sum(drop_send.values()) + sum(drop_recv.values()) \
        + sum(drop_wild.values())
    if not total:
        return
    for rank, ops in enumerate(rank_ops):
        kept: List[tuple] = []
        for op in reversed(ops):
            if op[0] in ("send", "isend"):
                chan = (rank, op[1], op[2])
                if drop_send.get(chan, 0) > 0:
                    drop_send[chan] -= 1
                    continue
            elif op[0] in ("recv", "irecv"):
                if op[1] == ANY_SOURCE:
                    key = (rank, op[2])
                    if drop_wild.get(key, 0) > 0:
                        drop_wild[key] -= 1
                        continue
                else:
                    chan = (op[1], rank, op[2])
                    if drop_recv.get(chan, 0) > 0:
                        drop_recv[chan] -= 1
                        continue
            kept.append(op)
        kept.reverse()
        rank_ops[rank] = kept
    report.repair("ING006",
                  f"dropped {total} unmatched point-to-point op(s)")


def _truncate_collectives(rank_ops: List[List[tuple]],
                          report: IngestReport) -> None:
    """Keep the longest collective prefix every rank agrees on (ING007)."""
    seqs = [[op for op in ops if op[0] in _COLLECTIVES]
            for ops in rank_ops]
    if not seqs:
        return
    depth = 0
    limit = min(len(s) for s in seqs)
    while depth < limit:
        sig = {(s[depth][0], s[depth][1]) for s in seqs}
        if len(sig) != 1:
            break
        depth += 1
    dropped = sum(len(s) - depth for s in seqs)
    if not dropped:
        return
    for rank, ops in enumerate(rank_ops):
        kept: List[tuple] = []
        seen = 0
        for op in ops:
            if op[0] in _COLLECTIVES:
                seen += 1
                if seen > depth:
                    continue
            kept.append(op)
        rank_ops[rank] = kept
    report.repair(
        "ING007",
        f"truncated collective sequences to a common prefix of "
        f"{depth} (dropped {dropped} op(s))")


# -- the replayable program ---------------------------------------------

class ReplayProgram(Program):
    """A :class:`~repro.sim.program.Program` driven by ingested op lists."""

    def __init__(self, rank_ops: List[List[tuple]],
                 name: str = "ingested"):
        self.name = name
        self.n_ranks = len(rank_ops)
        self.threads_per_rank = 1
        self.rank_ops = rank_ops
        self.working_set_bytes = 1 << 20

    @property
    def n_ops(self) -> int:
        return sum(len(ops) for ops in self.rank_ops)

    def make_rank(self, ctx):
        pending: List[int] = []
        for op in self.rank_ops[ctx.rank]:
            kind = op[0]
            if kind == "enter":
                yield Enter(op[1])
            elif kind == "leave":
                yield Leave(op[1])
            elif kind == "compute":
                yield Compute(INGEST_KERNEL, op[1])
            elif kind == "send":
                yield Send(dest=op[1], tag=op[2], nbytes=op[3])
            elif kind == "isend":
                pending.append((yield Isend(dest=op[1], tag=op[2],
                                            nbytes=op[3])))
            elif kind == "recv":
                yield Recv(source=op[1], tag=op[2])
            elif kind == "irecv":
                pending.append((yield Irecv(source=op[1], tag=op[2])))
            elif kind == "wait":
                yield Wait(pending.pop(0))
            elif kind == "waitall":
                yield Waitall(tuple(pending))
                pending.clear()
            elif kind == "allreduce":
                yield Allreduce(nbytes=op[2])
            elif kind == "alltoall":
                yield Alltoall(nbytes_per_pair=op[2])
            elif kind == "allgather":
                yield Allgather(nbytes_per_rank=op[2])
            elif kind == "bcast":
                yield Bcast(root=op[1], nbytes=op[2])
            elif kind == "reduce":
                yield Reduce(root=op[1], nbytes=op[2])
            elif kind == "barrier":
                yield Barrier()


def commops_doc(program: ReplayProgram) -> dict:
    """The normalized ``repro-commops-1`` document for ``program``."""
    ops = []
    for rank, rank_ops in enumerate(program.rank_ops):
        for op in rank_ops:
            rec = {"rank": rank, "op": op[0]}
            if op[0] in ("enter", "leave"):
                rec["region"] = op[1]
            elif op[0] == "compute":
                rec["units"] = op[1]
            elif op[0] in _P2P_OPS:
                rec["peer"] = "any" if op[1] == ANY_SOURCE else op[1]
                rec["tag"] = op[2]
                rec["bytes"] = op[3]
            elif op[0] in _COLLECTIVES:
                rec["root"] = op[1]
                rec["bytes"] = op[2]
            ops.append(rec)
    return {"format": COMMOPS_FORMAT, "n_ranks": program.n_ranks,
            "ops": ops}


# -- entry point ---------------------------------------------------------

def parse_commops(text: str, report: IngestReport,
                  budget: IngestBudget) -> ReplayProgram:
    """Parse and salvage a comm-op document into a lintable program.

    The returned program has NOT passed the lint gate yet; the pipeline
    runs :func:`repro.verify.lint_program` and rejects with ING013 when
    the salvaged op set is still not replayable.
    """
    header, records = _extract(text, report, budget)

    n_ranks = None
    if header is not None and _is_int(header.get("n_ranks")) \
            and header["n_ranks"] > 0:
        n_ranks = header["n_ranks"]
    if n_ranks is None:
        seen = [r.get("rank") for r in records]
        ranks = [r for r in seen if _is_int(r) and r >= 0]
        if not ranks:
            report.reject("ING002",
                          "cannot determine the rank count (no header, "
                          "no usable rank fields)")
            raise ValueError("rank count unknown")
        n_ranks = max(ranks) + 1
        report.repair("ING003",
                      f"header missing or damaged; inferred "
                      f"n_ranks={n_ranks} from op records")
    budget.check_ranks(n_ranks)

    rank_ops: List[List[tuple]] = [[] for _ in range(n_ranks)]
    bad = 0
    for rec in records:
        decoded = _decode_op(rec, n_ranks)
        if decoded is None:
            bad += 1
            continue
        rank, op = decoded
        rank_ops[rank].append(op)
    if bad:
        report.n_dropped += bad
        report.repair("ING003", f"dropped {bad} malformed op(s)")
    report.n_records += len(records) - bad
    if all(not ops for ops in rank_ops):
        report.reject("ING002", "no usable comm-op records remain")
        raise ValueError("no usable ops")

    budget.check_deadline()
    for rank in range(n_ranks):
        rank_ops[rank] = _balance_regions(rank_ops[rank], report, rank)
        rank_ops[rank] = _repair_requests(rank_ops[rank], report, rank)
    _trim_unmatched_p2p(rank_ops, report)
    _truncate_collectives(rank_ops, report)
    # trimming p2p can strand waits again (their request was dropped)
    for rank in range(n_ranks):
        rank_ops[rank] = _repair_requests(rank_ops[rank], report, rank)
    budget.check_deadline()
    return ReplayProgram(rank_ops)
