"""Hard resource caps for untrusted-trace ingestion.

Every ingestion run operates under an :class:`IngestLimits` contract: a
byte cap checked before any parsing, event/location/region/rank caps
charged while parsing, and a wall-clock deadline polled between records
and between salvage passes.  Violations raise :class:`IngestCapError`,
which the pipeline converts into a structured rejection (ING001 for
resource caps, ING010 for the timeout) -- hostile input can make the
pipeline *refuse*, never hang or exhaust memory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["IngestLimits", "IngestBudget", "IngestCapError"]


class IngestCapError(Exception):
    """A resource cap or the wall-clock deadline was exceeded.

    Internal control flow of :mod:`repro.ingest`: the pipeline catches
    it and rejects with the carried rule id; it never escapes
    ``ingest_bytes``.
    """

    def __init__(self, rule_id: str, message: str):
        super().__init__(message)
        self.rule_id = rule_id
        self.message = message


@dataclass(frozen=True)
class IngestLimits:
    """Caps one ingestion run must stay within (all have safe defaults)."""

    max_bytes: int = 256 * 1024 * 1024     #: input size cap (pre-parse)
    max_events: int = 2_000_000            #: total trace events / comm ops
    max_locations: int = 4096              #: (rank, thread) pairs
    max_regions: int = 65536               #: distinct region names
    max_ranks: int = 4096                  #: comm-op schema rank cap
    timeout_seconds: float = 60.0          #: wall-clock deadline


class IngestBudget:
    """Mutable consumption tracker for one run under an :class:`IngestLimits`.

    ``check_deadline`` is cheap enough to call per record; parsers call
    it every :data:`DEADLINE_STRIDE` records and between pipeline stages.
    """

    DEADLINE_STRIDE = 1024

    def __init__(self, limits: IngestLimits, time_fn=time.monotonic):
        self.limits = limits
        self._time_fn = time_fn
        self._t0 = time_fn()
        self.events = 0
        self._since_check = 0

    def elapsed(self) -> float:
        return self._time_fn() - self._t0

    def check_bytes(self, n: int) -> None:
        if n > self.limits.max_bytes:
            raise IngestCapError(
                "ING001", f"input is {n} bytes, cap is "
                f"{self.limits.max_bytes}")

    def check_deadline(self) -> None:
        if self.elapsed() > self.limits.timeout_seconds:
            raise IngestCapError(
                "ING010", f"ingestion exceeded the "
                f"{self.limits.timeout_seconds:g}s deadline")

    def charge_events(self, n: int = 1) -> None:
        """Count ``n`` parsed records; polls the deadline periodically."""
        self.events += n
        if self.events > self.limits.max_events:
            raise IngestCapError(
                "ING001", f"more than {self.limits.max_events} records")
        self._since_check += n
        if self._since_check >= self.DEADLINE_STRIDE:
            self._since_check = 0
            self.check_deadline()

    def check_locations(self, n: int) -> None:
        if n > self.limits.max_locations:
            raise IngestCapError(
                "ING001", f"{n} locations, cap is "
                f"{self.limits.max_locations}")

    def check_regions(self, n: int) -> None:
        if n > self.limits.max_regions:
            raise IngestCapError(
                "ING001", f"{n} regions, cap is {self.limits.max_regions}")

    def check_ranks(self, n: int) -> None:
        if n > self.limits.max_ranks:
            raise IngestCapError(
                "ING001", f"{n} ranks, cap is {self.limits.max_ranks}")
