"""The hardened ingestion pipeline: bytes in, trace/program + report out.

Contract (the one the fuzzer asserts): for *any* input bytes,
:func:`ingest_bytes` either

* returns an :class:`IngestResult` whose trace passes
  :func:`repro.verify.sanitize_raw` clean (or whose program passes the
  static linter), with every repair recorded in the report, or
* raises :class:`IngestError` carrying at least one ING error
  diagnostic,

within the wall-clock and memory caps of the active
:class:`~repro.ingest.limits.IngestLimits`.  No other exception escapes;
nothing hangs; nothing unbounded is allocated.
"""

from __future__ import annotations

import gzip
import io as _stdio
import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro import obs
from repro.ingest.limits import IngestBudget, IngestCapError, IngestLimits
from repro.ingest.report import IngestError, IngestReport
from repro.measure.trace import RawTrace

__all__ = ["IngestResult", "ingest_bytes", "ingest_file", "sniff_format"]

_GZIP_MAGIC = b"\x1f\x8b"
#: how much of the (decoded) input the format sniffer inspects
_SNIFF_WINDOW = 64 * 1024

_CAP_RULES = {"ING001", "ING010"}


@dataclass
class IngestResult:
    """Outcome of one successful ingestion.

    ``kind`` is ``"trace"`` (Chrome input -> :class:`RawTrace`) or
    ``"program"`` (comm-op input -> replayable
    :class:`~repro.ingest.commops.ReplayProgram`).
    """

    kind: str
    report: IngestReport
    trace: Optional[RawTrace] = None
    program: object = None


def sniff_format(text: str) -> str:
    """``"commops"`` if the head declares the commops schema, else chrome."""
    head = text[:_SNIFF_WINDOW]
    if '"repro-commops-1"' in head:
        return "commops"
    return "chrome"


def _decompress_capped(data: bytes, budget: IngestBudget) -> bytes:
    """Gunzip with the byte cap enforced on the *inflated* size.

    Reads one byte past the cap so a decompression bomb is detected
    without materialising it (ING001), and truncated/garbled gzip
    streams surface as ordinary parse damage downstream.
    """
    cap = budget.limits.max_bytes
    try:
        with gzip.GzipFile(fileobj=_stdio.BytesIO(data)) as fh:
            out = fh.read(cap + 1)
    except (OSError, EOFError, zlib.error):
        # salvage whatever inflated cleanly before the damage
        out = b""
        try:
            dec = zlib.decompressobj(zlib.MAX_WBITS | 16)
            out = dec.decompress(data, cap + 1)
        except zlib.error:
            pass
        if not out:
            raise ValueError("gzip stream is unreadable") from None
    if len(out) > cap:
        raise IngestCapError(
            "ING001", f"decompressed input exceeds the {cap} byte cap")
    return out


def ingest_bytes(
    data: bytes,
    name: str = "<bytes>",
    fmt: Optional[str] = None,
    limits: Optional[IngestLimits] = None,
) -> IngestResult:
    """Ingest untrusted trace bytes; never raises anything but IngestError.

    ``fmt`` forces ``"chrome"`` or ``"commops"``; ``None`` sniffs.
    """
    report = IngestReport(source=name)
    budget = IngestBudget(limits or IngestLimits())
    try:
        result = _ingest_inner(data, fmt, report, budget)
        report.accepted = True
        obs.counter("ingest.records").inc(report.n_records)
        if report.repairs:
            obs.counter("ingest.repairs").inc(len(report.repairs))
        return result
    except IngestCapError as exc:
        report.reject(exc.rule_id, exc.message)
    except IngestError:
        raise
    except Exception as exc:  # noqa: BLE001 -- the never-crash contract
        if not report.rejections:
            detail = str(exc) or type(exc).__name__
            report.reject("ING002", f"unsalvageable input ({detail})")
    finally:
        report.elapsed_seconds = budget.elapsed()
    obs.counter("ingest.rejects").inc()
    raise IngestError(report)


def _ingest_inner(data: bytes, fmt: Optional[str], report: IngestReport,
                  budget: IngestBudget) -> IngestResult:
    if not isinstance(data, bytes):
        data = bytes(data)
    budget.check_bytes(len(data))
    if data[:2] == _GZIP_MAGIC:
        data = _decompress_capped(data, budget)
    # bit-flips in multi-byte sequences become U+FFFD and fail record
    # parsing locally instead of poisoning the whole input
    text = data.decode("utf-8", errors="replace")
    if fmt is None:
        fmt = sniff_format(text)
    report.fmt = fmt

    if fmt == "commops":
        from repro.ingest.commops import parse_commops
        from repro.verify.linter import lint_program

        program = parse_commops(text, report, budget)
        budget.check_deadline()
        lint = lint_program(program)
        if not lint.ok:
            worst = lint.errors[0]
            report.reject(
                "ING013",
                f"salvaged op set is not replayable: {len(lint.errors)} "
                f"lint error(s), first: [{worst.rule_id}] {worst.message}")
            raise ValueError("program failed the lint gate")
        return IngestResult(kind="program", report=report,
                            program=program)

    if fmt != "chrome":
        report.reject("ING002", f"unknown format {fmt!r}")
        raise ValueError("unknown format")
    from repro.ingest.chrome import parse_chrome
    from repro.ingest.salvage import salvage_trace

    pending = parse_chrome(text, report, budget)
    budget.check_deadline()
    trace = salvage_trace(pending, report, budget)
    return IngestResult(kind="trace", report=report, trace=trace)


def ingest_file(
    path,
    fmt: Optional[str] = None,
    limits: Optional[IngestLimits] = None,
    quarantine: bool = True,
) -> IngestResult:
    """Ingest a trace file; quarantines it (``*.corrupt-N``) on rejection.

    The size cap is checked against the on-disk size before the file is
    read, so an oversized upload never reaches memory.
    """
    path = Path(path)
    limits = limits or IngestLimits()
    report_stub = IngestReport(source=str(path))
    try:
        size = path.stat().st_size
    except OSError as exc:
        report_stub.reject("ING002", f"cannot stat input: {exc}")
        raise IngestError(report_stub) from None
    if size > limits.max_bytes:
        report_stub.reject(
            "ING001",
            f"input is {size} bytes, cap is {limits.max_bytes}")
        if quarantine:
            report_stub.quarantine_path = _quarantine_path(path)
        obs.counter("ingest.rejects").inc()
        raise IngestError(report_stub)
    try:
        data = path.read_bytes()
    except OSError as exc:
        report_stub.reject("ING002", f"cannot read input: {exc}")
        raise IngestError(report_stub) from None
    try:
        return ingest_bytes(data, name=str(path), fmt=fmt, limits=limits)
    except IngestError as exc:
        if quarantine:
            exc.report.quarantine_path = _quarantine_path(path)
        raise


def _quarantine_path(path: Path) -> Optional[str]:
    from repro.experiments.workflow import _quarantine

    moved = _quarantine(path)
    return str(moved) if moved is not None else None


def report_json(result_or_error) -> str:
    """The ingest report of a result *or* error, as one JSON document."""
    report = (result_or_error.report
              if hasattr(result_or_error, "report") else result_or_error)
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)
