"""Call-path tree keyed by region-name tuples."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["CallPath", "CallTree"]

#: A call path is a tuple of region names from the root down.
CallPath = Tuple[str, ...]


class CallTree:
    """Interns call paths (name tuples) to dense integer ids.

    The tree structure (parent/children) is derived from the prefixes of
    the interned paths; interning a path implicitly interns all its
    ancestors so subtree aggregation is always well defined.
    """

    def __init__(self):
        self._ids: Dict[CallPath, int] = {}
        self._paths: List[CallPath] = []
        self._children: Dict[int, List[int]] = {}

    def intern(self, path: CallPath) -> int:
        """Return the id for ``path``, creating it (and ancestors) if new."""
        cpid = self._ids.get(path)
        if cpid is not None:
            return cpid
        if path:
            parent_id = self.intern(path[:-1])
        else:
            parent_id = None
        cpid = len(self._paths)
        self._ids[path] = cpid
        self._paths.append(path)
        self._children[cpid] = []
        if parent_id is not None:
            self._children[parent_id].append(cpid)
        return cpid

    def id_of(self, path: CallPath) -> Optional[int]:
        return self._ids.get(tuple(path))

    def path(self, cpid: int) -> CallPath:
        return self._paths[cpid]

    def name(self, cpid: int) -> str:
        p = self._paths[cpid]
        return p[-1] if p else "<root>"

    def parent(self, cpid: int) -> Optional[int]:
        p = self._paths[cpid]
        if not p:
            return None
        return self._ids[p[:-1]]

    def children(self, cpid: int) -> List[int]:
        return list(self._children.get(cpid, ()))

    def subtree(self, cpid: int) -> List[int]:
        """cpid plus all descendants (preorder)."""
        out = [cpid]
        stack = list(self._children.get(cpid, ()))
        while stack:
            c = stack.pop()
            out.append(c)
            stack.extend(self._children.get(c, ()))
        return out

    def find_suffix(self, *names: str) -> List[int]:
        """All call paths ending with the given name sequence.

        ``find_suffix("cg_solve", "dot")`` matches every interned path
        whose last two components are those names -- how the paper refers
        to call paths ("cg_solve/dot").
        """
        suffix = tuple(names)
        n = len(suffix)
        return [
            cpid
            for cpid, p in enumerate(self._paths)
            if len(p) >= n and p[-n:] == suffix
        ]

    def __len__(self) -> int:
        return len(self._paths)

    def __iter__(self):
        return iter(range(len(self._paths)))

    def paths(self) -> List[CallPath]:
        return list(self._paths)
