"""The profile: severities over (metric, call path, location).

Severities are stored *exclusively* per (metric leaf, call path, location)
triple.  Aggregations (over locations, over call-path subtrees) and the
paper's two percentage views are provided as queries.

Units: in a raw profile, severities are in the measurement's own units
(seconds for tsc, clock units for logical modes).  ``normalized()``
divides everything by the total *time* severity, producing the
dimensionless fractions the paper compares across clocks ("These values
should be interpreted as fractions of the total reported effort for a
given effort model"); ``mean()`` averages normalized profiles over
repetitions.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cube.calltree import CallPath, CallTree
from repro.cube.systemtree import SystemTree

__all__ = ["CubeProfile"]


class CubeProfile:
    """Severity store over metric x call path x location.

    Parameters
    ----------
    time_metrics:
        Names of the metric leaves whose sum constitutes the *time*
        metric (the normalisation denominator).  Metrics not listed here
        (e.g. delay costs) are carried along and normalised by the same
        denominator but do not contribute to it.
    """

    def __init__(
        self,
        system: SystemTree,
        time_metrics: Sequence[str],
        mode: str = "",
        meta: Optional[dict] = None,
    ):
        self.system = system
        self.calltree = CallTree()
        self.time_metrics = tuple(time_metrics)
        self.mode = mode
        self.meta = dict(meta or {})
        # metric -> {(cpid, loc): severity}
        self._sev: Dict[str, Dict[Tuple[int, int], float]] = defaultdict(dict)

    # -- writing -----------------------------------------------------------
    def add(self, metric: str, path: CallPath, loc: int, value: float) -> None:
        """Accumulate ``value`` into the (metric, path, loc) cell."""
        if value == 0.0:
            return
        cpid = self.calltree.intern(tuple(path))
        cell = self._sev[metric]
        key = (cpid, loc)
        cell[key] = cell.get(key, 0.0) + value

    def add_id(self, metric: str, cpid: int, loc: int, value: float) -> None:
        """Hot-path variant of :meth:`add` taking a pre-interned path id.

        ``cpid`` must come from this profile's own ``calltree`` (the
        analyzer builds the profile around its call tree).
        """
        if value == 0.0:
            return
        cell = self._sev[metric]
        key = (cpid, loc)
        cell[key] = cell.get(key, 0.0) + value

    # -- raw access ----------------------------------------------------------
    @property
    def metrics(self) -> List[str]:
        return sorted(self._sev)

    def cells(self, metric: str) -> Mapping[Tuple[int, int], float]:
        return self._sev.get(metric, {})

    def value(self, metric: str, path: CallPath, loc: Optional[int] = None) -> float:
        """Exclusive severity of a cell (or summed over locations)."""
        cpid = self.calltree.id_of(tuple(path))
        if cpid is None:
            return 0.0
        cell = self._sev.get(metric, {})
        if loc is not None:
            return cell.get((cpid, loc), 0.0)
        return sum(v for (cp, _l), v in cell.items() if cp == cpid)

    # -- aggregations -----------------------------------------------------
    def metric_total(self, metric: str) -> float:
        """Sum of a metric over all call paths and locations."""
        return sum(self._sev.get(metric, {}).values())

    def total_time(self) -> float:
        """Total severity of the *time* metric (the %T denominator)."""
        return sum(self.metric_total(m) for m in self.time_metrics)

    def by_callpath(self, metric: str) -> Dict[CallPath, float]:
        """Exclusive metric severity per call path, summed over locations."""
        out: Dict[int, float] = defaultdict(float)
        for (cpid, _loc), v in self._sev.get(metric, {}).items():
            out[cpid] += v
        return {self.calltree.path(cpid): v for cpid, v in out.items()}

    def by_location(self, metric: str) -> Dict[int, float]:
        """Metric severity per location, summed over call paths."""
        out: Dict[int, float] = defaultdict(float)
        for (_cpid, loc), v in self._sev.get(metric, {}).items():
            out[loc] += v
        return dict(out)

    def inclusive(self, metric: str, path: CallPath) -> float:
        """Metric severity of a call path *including* its descendants."""
        cpid = self.calltree.id_of(tuple(path))
        if cpid is None:
            return 0.0
        ids = set(self.calltree.subtree(cpid))
        return sum(v for (cp, _l), v in self._sev.get(metric, {}).items() if cp in ids)

    # -- the paper's percentage views ------------------------------------
    def percent_of_time(self, metric: str, path: Optional[CallPath] = None) -> float:
        """%T: severity as a percentage of total time ("own root percent")."""
        total = self.total_time()
        if total <= 0.0:
            return 0.0
        if path is None:
            v = self.metric_total(metric)
        else:
            v = self.inclusive(metric, path)
        return 100.0 * v / total

    def metric_selection_percent(self, metric: str) -> Dict[CallPath, float]:
        """%M: each call path's share of the metric's total (inclusive view
        collapses to exclusive because severities are stored exclusively;
        use :meth:`inclusive` for subtree percentages)."""
        total = self.metric_total(metric)
        if total <= 0.0:
            return {}
        return {p: 100.0 * v / total for p, v in self.by_callpath(metric).items()}

    # -- comparison / averaging helpers -------------------------------------
    def as_mapping(
        self, metrics: Optional[Sequence[str]] = None, per_location: bool = False
    ) -> Dict[Tuple, float]:
        """Flatten to ``{(metric, path[, loc]): fraction-of-time}``.

        This is the non-negative function the generalized Jaccard score
        compares (paper Sec. V-B).
        """
        total = self.total_time()
        if total <= 0.0:
            return {}
        use = self.metrics if metrics is None else list(metrics)
        out: Dict[Tuple, float] = {}
        for m in use:
            for (cpid, loc), v in self._sev.get(m, {}).items():
                path = self.calltree.path(cpid)
                key = (m, path, loc) if per_location else (m, path)
                out[key] = out.get(key, 0.0) + v / total
        return out

    def normalized(self) -> "CubeProfile":
        """A copy with all severities divided by the total time severity."""
        total = self.total_time()
        if total <= 0.0:
            raise ValueError("cannot normalize a profile with zero total time")
        out = CubeProfile(self.system, self.time_metrics, mode=self.mode, meta=dict(self.meta))
        for m, cell in self._sev.items():
            for (cpid, loc), v in cell.items():
                out.add(m, self.calltree.path(cpid), loc, v / total)
        out.meta["normalized"] = True
        return out

    @classmethod
    def mean(cls, profiles: Sequence["CubeProfile"]) -> "CubeProfile":
        """Arithmetic mean of normalized profiles (paper Sec. IV-B).

        All profiles must share the system tree.  Missing cells count as
        zero, as they would in Cube.
        """
        if not profiles:
            raise ValueError("mean() of no profiles")
        first = profiles[0]
        for p in profiles[1:]:
            if p.system != first.system:
                raise ValueError("profiles to average must share the system tree")
        out = cls(first.system, first.time_metrics, mode=first.mode, meta={"averaged_over": len(profiles)})
        n = float(len(profiles))
        for p in profiles:
            norm = p.normalized()
            for m, cell in norm._sev.items():
                for (cpid, loc), v in cell.items():
                    out.add(m, norm.calltree.path(cpid), loc, v / n)
        out.meta["normalized"] = True
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CubeProfile(mode={self.mode!r}, metrics={len(self._sev)}, "
            f"callpaths={len(self.calltree)}, locations={self.system.n_locations})"
        )
