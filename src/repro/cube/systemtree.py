"""System tree: job -> node -> rank -> thread locations."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["SystemTree"]


class SystemTree:
    """Locations of a run, with optional hardware placement metadata."""

    def __init__(
        self,
        locations: List[Tuple[int, int]],
        nodes_of_ranks: Optional[Dict[int, int]] = None,
    ):
        self.locations = list(locations)
        self._index = {lt: i for i, lt in enumerate(self.locations)}
        self.nodes_of_ranks = dict(nodes_of_ranks or {})

    @property
    def n_locations(self) -> int:
        return len(self.locations)

    @property
    def ranks(self) -> List[int]:
        return sorted({r for (r, _t) in self.locations})

    def loc_id(self, rank: int, thread: int) -> int:
        return self._index[(rank, thread)]

    def threads_of(self, rank: int) -> List[int]:
        return sorted(t for (r, t) in self.locations if r == rank)

    def locations_of_rank(self, rank: int) -> List[int]:
        return [i for i, (r, _t) in enumerate(self.locations) if r == rank]

    def master_locations(self) -> List[int]:
        return [self._index[(r, 0)] for r in self.ranks]

    def node_of(self, rank: int) -> Optional[int]:
        return self.nodes_of_ranks.get(rank)

    def __eq__(self, other) -> bool:
        return isinstance(other, SystemTree) and self.locations == other.locations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SystemTree({len(self.locations)} locations, {len(self.ranks)} ranks)"
