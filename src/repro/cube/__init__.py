"""Cube analogue: (metric x call path x system location) profiles.

Scalasca's output is a profile over three dimensions -- metric tree, call
tree and system tree -- explored in the Cube browser.  This package
provides that data model plus the two query modes the paper reads numbers
from:

* ``%T`` ("own root percent"): a severity as a fraction of the total
  *time* metric,
* ``%M`` ("metric selection percent"): a call path's fraction of one
  metric's total.

Call paths are keyed by tuples of region *names* so profiles from
different measurement modes (whose internal region ids differ) compare
directly -- required for the paper's Jaccard studies and for averaging the
five repetitions of noisy modes.
"""

from repro.cube.calltree import CallTree, CallPath
from repro.cube.systemtree import SystemTree
from repro.cube.profile import CubeProfile
from repro.cube.io import write_profile, read_profile
from repro.cube.diff import profile_diff

__all__ = [
    "CallTree",
    "CallPath",
    "SystemTree",
    "CubeProfile",
    "write_profile",
    "read_profile",
    "profile_diff",
]
