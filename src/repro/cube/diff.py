"""Profile comparison helpers."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cube.calltree import CallPath
from repro.cube.profile import CubeProfile

__all__ = ["profile_diff"]


def profile_diff(
    a: CubeProfile,
    b: CubeProfile,
    metrics: Optional[Sequence[str]] = None,
    top: int = 20,
) -> List[Tuple[str, CallPath, float, float, float]]:
    """Largest absolute differences between two profiles.

    Both profiles are normalised (fraction-of-time units) before
    comparison.  Returns ``(metric, path, value_a, value_b, |diff|)``
    rows sorted by decreasing difference -- the "where do these two
    measurements disagree" question an analyst asks when comparing a
    logical measurement to tsc.
    """
    ma = a.as_mapping(metrics)
    mb = b.as_mapping(metrics)
    keys = set(ma) | set(mb)
    rows = []
    for key in keys:
        va = ma.get(key, 0.0)
        vb = mb.get(key, 0.0)
        rows.append((key[0], key[1], va, vb, abs(va - vb)))
    rows.sort(key=lambda r: -r[4])
    return rows[:top]
