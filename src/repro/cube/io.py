"""Profile (de)serialisation: gzipped JSON.

Writes are atomic (tmp + fsync + rename via
:func:`repro.measure.io.atomic_write_bytes`): a campaign killed mid-write
never leaves a truncated profile behind for a resume to trip over.
"""

from __future__ import annotations

import gzip
import io
import json
from pathlib import Path
from typing import Union

from repro.cube.profile import CubeProfile
from repro.cube.systemtree import SystemTree

__all__ = ["write_profile", "read_profile", "profile_doc", "profile_from_doc"]


def profile_doc(profile: CubeProfile) -> dict:
    """JSON document of a profile (the archive body, sans compression).

    Also embedded verbatim in the workflow's canonical result
    serialization (:func:`repro.experiments.workflow.serialize_result`),
    so the encoding is value-exact: floats round-trip through JSON
    ``repr`` bit-for-bit.
    """
    return {
        "format": "repro-cube-1",
        "mode": profile.mode,
        "meta": profile.meta,
        "time_metrics": list(profile.time_metrics),
        "locations": [list(lt) for lt in profile.system.locations],
        "nodes_of_ranks": {str(k): v for k, v in profile.system.nodes_of_ranks.items()},
        "callpaths": [list(p) for p in profile.calltree.paths()],
        "severities": {
            m: [[cpid, loc, v] for (cpid, loc), v in cells.items()]
            for m, cells in ((m, profile.cells(m)) for m in profile.metrics)
        },
    }


def profile_from_doc(doc: dict) -> CubeProfile:
    """Invert :func:`profile_doc`."""
    if doc.get("format") != "repro-cube-1":
        raise ValueError("not a repro cube profile document")
    system = SystemTree(
        [tuple(lt) for lt in doc["locations"]],
        {int(k): v for k, v in doc.get("nodes_of_ranks", {}).items()},
    )
    profile = CubeProfile(system, doc["time_metrics"], mode=doc["mode"], meta=doc["meta"])
    # intern callpaths in document order *before* filling severities, so
    # the rebuilt calltree preserves the original path ordering (a
    # round-trip is then byte-identical, which the serving layer's
    # bit-identity guarantee rests on)
    for p in doc["callpaths"]:
        profile.calltree.intern(tuple(p))
    for metric, triples in doc["severities"].items():
        for cpid, loc, v in triples:
            profile.add_id(metric, cpid, loc, v)
    return profile


def write_profile(profile: CubeProfile, path: Union[str, Path]) -> None:
    """Write ``profile`` to ``path`` (gzipped JSON)."""
    from repro.measure.io import atomic_write_bytes

    buf = io.BytesIO()
    with gzip.GzipFile(fileobj=buf, mode="wb", mtime=0) as gz:
        gz.write(json.dumps(profile_doc(profile)).encode("utf-8"))
    atomic_write_bytes(path, buf.getvalue())


def read_profile(path: Union[str, Path]) -> CubeProfile:
    """Read a profile written by :func:`write_profile`."""
    with gzip.open(Path(path), "rt", encoding="utf-8") as fh:
        doc = json.load(fh)
    try:
        return profile_from_doc(doc)
    except ValueError:
        raise ValueError(f"{path}: not a repro cube profile") from None
