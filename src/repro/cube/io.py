"""Profile (de)serialisation: gzipped JSON.

Writes are atomic (tmp + fsync + rename via
:func:`repro.measure.io.atomic_write_bytes`): a campaign killed mid-write
never leaves a truncated profile behind for a resume to trip over.
"""

from __future__ import annotations

import gzip
import io
import json
from pathlib import Path
from typing import Union

from repro.cube.profile import CubeProfile
from repro.cube.systemtree import SystemTree

__all__ = ["write_profile", "read_profile"]


def write_profile(profile: CubeProfile, path: Union[str, Path]) -> None:
    """Write ``profile`` to ``path`` (gzipped JSON)."""
    doc = {
        "format": "repro-cube-1",
        "mode": profile.mode,
        "meta": profile.meta,
        "time_metrics": list(profile.time_metrics),
        "locations": [list(lt) for lt in profile.system.locations],
        "nodes_of_ranks": {str(k): v for k, v in profile.system.nodes_of_ranks.items()},
        "callpaths": [list(p) for p in profile.calltree.paths()],
        "severities": {
            m: [[cpid, loc, v] for (cpid, loc), v in cells.items()]
            for m, cells in ((m, profile.cells(m)) for m in profile.metrics)
        },
    }
    from repro.measure.io import atomic_write_bytes

    buf = io.BytesIO()
    with gzip.GzipFile(fileobj=buf, mode="wb", mtime=0) as gz:
        gz.write(json.dumps(doc).encode("utf-8"))
    atomic_write_bytes(path, buf.getvalue())


def read_profile(path: Union[str, Path]) -> CubeProfile:
    """Read a profile written by :func:`write_profile`."""
    with gzip.open(Path(path), "rt", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("format") != "repro-cube-1":
        raise ValueError(f"{path}: not a repro cube profile")
    system = SystemTree(
        [tuple(lt) for lt in doc["locations"]],
        {int(k): v for k, v in doc.get("nodes_of_ranks", {}).items()},
    )
    profile = CubeProfile(system, doc["time_metrics"], mode=doc["mode"], meta=doc["meta"])
    paths = [tuple(p) for p in doc["callpaths"]]
    for metric, triples in doc["severities"].items():
        for cpid, loc, v in triples:
            profile.add(metric, paths[cpid], loc, v)
    return profile
