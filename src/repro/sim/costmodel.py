"""Physical cost model: kernel seconds, OpenMP construct costs, spin rates.

Compute kernels follow a roofline: ``t = max(t_flops + t_extra, t_mem)``,
where ``t_extra`` is flop-side time injected by instrumentation (basic-
block/statement counting instructions).  Folding the counting cost into the
*flop side* of the roofline reproduces a key observation from the paper's
Table I: counting instrumentation costs ~100 % in the latency/compute-bound
MiniFE initialization but is completely hidden in the memory-bound CG
solver ("overhead in the solver phase is negligible").

Memory time sees bandwidth contention with a desynchronization credit
(:class:`repro.machine.memory.MemoryModel`) and a cache-capacity bonus
(:class:`repro.machine.memory.CacheModel`).

The spin-rate constants govern what the simulated instruction counter sees
during waiting:

* MPI busy-polls its progress engine -> waiting retires instructions at
  ``mpi_spin_instr_per_sec``.  This is what makes lt_hwctr the only logical
  clock that "shows effort in the MPI library" and attributes the LULESH
  nodal imbalance to ``MPI_Waitall`` (paper Sec. V-C3).
* The OpenMP runtime's barrier uses a pause-loop that retires next to
  nothing -> ``omp_spin_instr_per_sec`` defaults to 0, which is why
  lt_hwctr reports "no waiting in OpenMP barriers" in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.machine.memory import CacheModel, MemoryModel
from repro.machine.noise import NoiseModel
from repro.machine.topology import Cluster
from repro.sim.kernels import KernelSpec
from repro.util.validation import check_nonnegative

__all__ = ["ComputeContext", "CostModel", "OmpCostModel"]


@dataclass
class ComputeContext:
    """Everything the cost model needs to price one kernel execution.

    ``team_actors`` are hardware threads of the *same* rank participating
    in the phase (they start together -> full overlap); ``other_actors``
    are threads of other ranks pinned to the same memory scope, whose
    overlap is discounted by ``desync`` (their current spread in virtual
    time).  ``cache_working_set``/``cache_extra_footprint`` are per-socket
    byte counts feeding the L3 model.
    """

    rank: int
    thread: int
    numa_id: int
    socket_id: int
    team_actors: int = 1
    other_actors: int = 0
    desync: float = 0.0
    cache_working_set: float = 0.0
    cache_extra_footprint: float = 0.0
    #: multiplier (<= 1) on the cross-rank overlap estimate.  Instrumented
    #: runs set this below 1 to model measurement-induced
    #: desynchronisation of memory-bound phases (Afzal et al.; the paper's
    #: explanation for the *negative* overheads in Fig. 2).
    overlap_factor: float = 1.0
    #: True when the thread team spans both sockets (TeaLeaf-1's 1 rank x
    #: 128 threads): shared-data traffic crosses the socket interconnect.
    team_cross_socket: bool = False


class CostModel:
    """Turns (kernel, units, context) into noisy virtual seconds."""

    def __init__(
        self,
        cluster: Cluster,
        memory: Optional[MemoryModel] = None,
        cache: Optional[CacheModel] = None,
        noise: Optional[NoiseModel] = None,
        mpi_spin_instr_per_sec: float = 2.0e9,
        omp_spin_instr_per_sec: float = 0.0,
        mpi_library_instr_per_call: float = 8.0e3,
        cross_socket_factor: float = 0.72,
    ):
        self.cluster = cluster
        self.memory = memory if memory is not None else MemoryModel(cluster)
        self.cache = cache if cache is not None else CacheModel(cluster)
        self.noise = noise
        self.mpi_spin_instr_per_sec = mpi_spin_instr_per_sec
        self.omp_spin_instr_per_sec = omp_spin_instr_per_sec
        self.mpi_library_instr_per_call = mpi_library_instr_per_call
        #: bandwidth penalty when a thread team spans both sockets
        self.cross_socket_factor = cross_socket_factor

    # -- bandwidth ------------------------------------------------------
    def _scope_bandwidth(self, kernel: KernelSpec, ctx: ComputeContext) -> float:
        """Aggregate DRAM bandwidth of the kernel's contention scope."""
        if kernel.memory_scope == "socket":
            domains = [d for d in self.cluster.numa_domains if d.socket_id == ctx.socket_id]
            return sum(d.mem_bandwidth for d in domains)
        return self.cluster.numa_domain(ctx.numa_id).mem_bandwidth

    def _effective_accessors(
        self, ctx: ComputeContext, solo_duration: float, overlap_mult: float = 1.0
    ) -> float:
        """Own team overlaps fully; other ranks' threads get a desync credit.

        ``overlap_mult`` carries the measurement-induced desynchronisation
        relief; callers pass it only for kernels on *shared* (socket-scope)
        memory paths, where the Afzal lockstep effect applies.
        """
        team = max(1, ctx.team_actors)
        if ctx.other_actors <= 0:
            return float(team)
        if solo_duration <= 0.0:
            overlap = 1.0
        else:
            overlap = math.exp(-max(ctx.desync, 0.0) / solo_duration)
        overlap *= min(1.0, max(0.0, overlap_mult))
        return team + ctx.other_actors * overlap

    # -- kernel pricing ---------------------------------------------------
    def kernel_time(
        self,
        kernel: KernelSpec,
        units: float,
        ctx: ComputeContext,
        extra_flop_time: float = 0.0,
        noisy: bool = True,
    ) -> float:
        """Seconds for ``units`` units of ``kernel`` under ``ctx``.

        ``extra_flop_time`` is instrumentation time added to the compute
        side of the roofline (hidden when the kernel is memory-bound).
        """
        check_nonnegative("units", units)
        check_nonnegative("extra_flop_time", extra_flop_time)
        t_flops = units * kernel.flops_per_unit / self.cluster.flops_per_core
        nbytes = units * kernel.bytes_per_unit

        if nbytes <= 0.0 or kernel.memory_scope == "none":
            base = t_flops + extra_flop_time
        else:
            cache_factor = self.cache.bandwidth_factor(
                ctx.cache_working_set, ctx.cache_extra_footprint
            )
            scope_bw = self._scope_bandwidth(kernel, ctx)
            solo_bw = min(self.memory.per_core_bw_cap, scope_bw) * cache_factor
            solo = nbytes / solo_bw if kernel.additive else max(t_flops, nbytes / solo_bw)
            relief = ctx.overlap_factor if kernel.memory_scope == "socket" else 1.0
            a_eff = self._effective_accessors(ctx, solo, overlap_mult=relief)
            per_actor_bw = min(
                scope_bw / (a_eff**self.memory.contention_exponent),
                self.memory.per_core_bw_cap,
            )
            per_actor_bw *= cache_factor
            if ctx.team_cross_socket:
                per_actor_bw *= self.cross_socket_factor
            if noisy and self.noise is not None:
                per_actor_bw *= self.noise.memory.factor(ctx.numa_id)
            t_mem = nbytes / per_actor_bw
            if kernel.additive:
                # Latency-bound phases on a *shared* (socket-scope) memory
                # path benefit directly from measurement-induced
                # desynchronisation -- less lockstep traffic on the shared
                # cache/directory shortens the memory-stall part.  This
                # encodes the Afzal effect the paper cites to explain its
                # *negative* overheads (Fig. 2).  NUMA-private additive
                # kernels (LULESH's gather/scatter loops) see no relief.
                base = t_flops + extra_flop_time + t_mem * relief
            else:
                base = max(t_flops + extra_flop_time, t_mem)

        if noisy and self.noise is not None:
            if kernel.jitter > 0.0:
                rng = self.noise.rngs.get(
                    "kernel-jitter", rank=ctx.rank, thread=ctx.thread
                )
                base *= float(np.exp(rng.normal(-0.5 * kernel.jitter**2, kernel.jitter)))
            return self.noise.compute_time(ctx.rank, ctx.thread, base)
        return base

    # -- instruction accrual ----------------------------------------------
    def mpi_wait_instructions(self, seconds: float) -> float:
        """Instructions retired while busy-polling inside MPI."""
        check_nonnegative("seconds", seconds)
        return self.mpi_spin_instr_per_sec * seconds

    def omp_wait_instructions(self, seconds: float) -> float:
        """Instructions retired while waiting at an OpenMP barrier."""
        check_nonnegative("seconds", seconds)
        return self.omp_spin_instr_per_sec * seconds


@dataclass
class OmpCostModel:
    """Costs of OpenMP runtime constructs.

    Linear fork/join models (cf. the paper's citation of Iwainsky et al.,
    "How many threads will be too many?") and a log-tree barrier.  These
    constants generate the LULESH-1 OpenMP overhead that the paper's
    X = 100 bb / Y = 4300 stmt constants were fitted against.
    """

    fork_base: float = 1.5e-6
    fork_per_thread: float = 0.04e-6
    join_base: float = 0.8e-6
    join_per_thread: float = 0.05e-6
    barrier_base: float = 0.6e-6
    barrier_log_factor: float = 0.5e-6
    thread_stagger: float = 0.08e-6  # per-thread wake skew inside fork
    runtime_instr_per_call: float = 3.0e3  # instructions inside the runtime

    def fork_cost(self, n_threads: int) -> float:
        if n_threads <= 1:
            return self.fork_base * 0.25
        return self.fork_base + self.fork_per_thread * n_threads

    def join_cost(self, n_threads: int) -> float:
        if n_threads <= 1:
            return self.join_base * 0.25
        return self.join_base + self.join_per_thread * n_threads

    def barrier_cost(self, n_threads: int) -> float:
        if n_threads <= 1:
            return self.barrier_base * 0.25
        return self.barrier_base + self.barrier_log_factor * math.log2(n_threads)

    def stagger(self, thread: int) -> float:
        return self.thread_stagger * thread
