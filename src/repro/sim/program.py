"""Program abstraction: what the engine runs.

A :class:`Program` bundles the SPMD rank-generator factory with job-level
metadata (rank/thread counts, pinning policy, phase names for reference
timing, working-set size for the cache model).  The three mini-apps in
:mod:`repro.miniapps` subclass it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Tuple

from repro.machine.topology import Cluster, Pinning
from repro.util.validation import check_positive

__all__ = ["ProgramContext", "Program"]


@dataclass(frozen=True)
class ProgramContext:
    """Per-rank view handed to the rank generator."""

    rank: int
    n_ranks: int
    n_threads: int

    def neighbors_3d(self, dims: Tuple[int, int, int]) -> dict:
        """Face neighbours of this rank on a 3-D cartesian decomposition.

        Returns ``{axis_direction: rank}`` for the up-to-six face
        neighbours, e.g. ``{"x-": 3, "x+": 5, ...}``.  Used by LULESH's
        halo exchange.
        """
        nx, ny, nz = dims
        if nx * ny * nz != self.n_ranks:
            raise ValueError(f"dims {dims} do not factor {self.n_ranks} ranks")
        r = self.rank
        ix = r % nx
        iy = (r // nx) % ny
        iz = r // (nx * ny)
        out = {}
        if ix > 0:
            out["x-"] = r - 1
        if ix < nx - 1:
            out["x+"] = r + 1
        if iy > 0:
            out["y-"] = r - nx
        if iy < ny - 1:
            out["y+"] = r + nx
        if iz > 0:
            out["z-"] = r - nx * ny
        if iz < nz - 1:
            out["z+"] = r + nx * ny
        return out

    def neighbors_2d(self, dims: Tuple[int, int]) -> dict:
        """Face neighbours on a 2-D cartesian decomposition (TeaLeaf)."""
        nx, ny = dims
        if nx * ny != self.n_ranks:
            raise ValueError(f"dims {dims} do not factor {self.n_ranks} ranks")
        r = self.rank
        ix = r % nx
        iy = r // nx
        out = {}
        if ix > 0:
            out["x-"] = r - 1
        if ix < nx - 1:
            out["x+"] = r + 1
        if iy > 0:
            out["y-"] = r - nx
        if iy < ny - 1:
            out["y+"] = r + nx
        return out


class Program:
    """Base class for simulated applications.

    Subclasses must set ``name``, ``n_ranks`` and ``threads_per_rank`` and
    implement :meth:`make_rank`.  ``phases`` lists region names whose wall
    durations the engine reports even in uninstrumented reference runs
    (mirroring the mini-apps' own timer output, which the paper uses for
    its overhead tables).
    """

    name: str = "program"
    n_ranks: int = 1
    threads_per_rank: int = 1
    #: region names tracked for reference timing
    phases: Tuple[str, ...] = ()
    #: application working set in bytes, summed over the job (cache model)
    working_set_bytes: float = 0.0
    #: pinning policy: "packed" or "spread_numa"
    pinning_policy: str = "packed"

    def make_rank(self, ctx: ProgramContext) -> Generator:
        """Return the action generator for rank ``ctx.rank``."""
        raise NotImplementedError

    def pinning(self, cluster: Cluster) -> Pinning:
        """Place the job on the cluster according to the pinning policy."""
        check_positive("n_ranks", self.n_ranks)
        check_positive("threads_per_rank", self.threads_per_rank)
        if self.pinning_policy == "spread_numa":
            return Pinning.spread_ranks_over_numa(cluster, self.n_ranks, self.threads_per_rank)
        if self.pinning_policy == "balanced_numa":
            return Pinning.balanced_numa(cluster, self.n_ranks, self.threads_per_rank)
        if self.pinning_policy == "packed":
            return Pinning.packed(cluster, self.n_ranks, self.threads_per_rank)
        raise ValueError(f"unknown pinning policy {self.pinning_policy!r}")

    def working_set_per_socket(self, pinning: Pinning) -> float:
        """Per-socket share of the working set (cache-model input).

        Counts the sockets of *all* pinned hardware threads (a single rank
        spanning both sockets, as in TeaLeaf-1, spreads its data by first
        touch).
        """
        sockets = {pinning.core_of(r, t).socket_id for (r, t) in pinning.locations()}
        if not sockets or self.working_set_bytes <= 0:
            return 0.0
        return self.working_set_bytes / len(sockets)
