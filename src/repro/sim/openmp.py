"""Execution of OpenMP parallel worksharing constructs.

A :class:`~repro.sim.actions.ParallelFor` is executed analytically within
the owning rank: the master forks a team, every thread runs its chunk
under per-thread noise and contention, all threads meet at the implicit
barrier, and the master joins.  The event pattern per construct matches
what Opari2 instrumentation produces (the paper's Sec. II-B lists support
for "barriers, loops, fork/join and critical regions"):

master (thread 0):
    ENTER omp_parallel_R . FORK . [chunk like a worker] . JOIN . LEAVE
worker thread i:
    TEAM_BEGIN . ENTER omp_for_R . LEAVE omp_for_R . OBAR_ENTER . OBAR_LEAVE

Logical-clock synchronisation points: FORK -> TEAM_BEGIN (workers adopt
master+1), OBAR_LEAVE (team-wide max+1), JOIN (master adopts barrier
value).  The per-construct ``omp_calls`` work-delta entries feed the
paper's X basic-block / Y statement external-effort constants for
lt_bb / lt_stmt.

Construct compression: with ``represents = N`` the single emitted event
pattern stands for N identical back-to-back constructs; every
per-construct cost (runtime, instrumentation, runtime work counts, lt_1
event counts) scales by N.  Jitter-driven barrier waits are compression-
invariant because both the aggregate chunk and the summed per-iteration
waits scale linearly in sigma x total work.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.sim.actions import ParallelFor
from repro.sim.events import (
    ENTER,
    FORK,
    JOIN,
    LEAVE,
    OBAR_ENTER,
    OBAR_LEAVE,
    TEAM_BEGIN,
    Ev,
    Paradigm,
)
from repro.sim.kernels import EMPTY_DELTA, WorkDelta

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine, _RankState

__all__ = ["execute_parallel_for"]

#: trace events emitted per worker thread per construct (for overhead math)
_WORKER_EVENTS = 5


def execute_parallel_for(engine: "Engine", rank: "_RankState", pf: ParallelFor) -> None:
    """Run one (possibly compressed) parallel-for; advances ``rank.t``."""
    omp = engine.omp_cost
    n_threads = rank.n_threads
    omp_id = engine.next_omp_id()
    rep = max(1.0, float(pf.represents))
    instrumented = engine.measurement is not None

    if instrumented:
        r_parallel = engine.regions.intern(f"omp_parallel_{pf.region}", Paradigm.OMP)
        r_for = engine.regions.intern(f"omp_for_{pf.region}", Paradigm.OMP)
        r_bar = engine.regions.intern(f"omp_ibarrier_{pf.region}", Paradigm.OMP)
        r_writes = tuple(
            engine.regions.intern(f"omp_shared_write_{var}", Paradigm.OMP)
            for var in pf.shared_writes
        )
    else:
        r_parallel = r_for = r_bar = -1
        r_writes = ()

    # Per-construct measurement cost, scaled by compression.
    ev_cost = engine.ev_cost
    # lt_1 equivalence: each emitted event stands for `rep` recorded events.
    extra_bc = (rep - 1.0) / 2.0
    runtime_delta = WorkDelta(
        omp_calls=rep, instr=omp.runtime_instr_per_call * rep, burst_calls=extra_bc
    )

    if instrumented:
        engine.emit_master(rank, Ev(ENTER, r_parallel, rank.t, rank.flush_delta()))
        rank.t += ev_cost
        engine.emit_master(rank, Ev(FORK, r_parallel, rank.t, runtime_delta, aux=omp_id))
        rank.t += ev_cost * rep

    fork_done = rank.t + omp.fork_cost(n_threads) * rep
    units = pf.thread_units(n_threads)

    starts = np.empty(n_threads)
    finishes = np.empty(n_threads)
    for i in range(n_threads):
        starts[i] = fork_done + omp.stagger(i)
        chunk_counts = pf.kernel.scaled_counts(float(units[i]))
        count_cost = engine.count_cost(chunk_counts)
        ctx = engine.compute_context(rank.rank, i, pf.kernel, team_threads=n_threads)
        dur = engine.cost.kernel_time(pf.kernel, float(units[i]), ctx, extra_flop_time=count_cost)
        dur *= engine.compute_scale(rank.rank, i)
        n_events = _WORKER_EVENTS if i > 0 else _WORKER_EVENTS - 1  # master: no TEAM_BEGIN
        n_events += 2 * len(r_writes)  # zero-width shared-write region pairs
        finishes[i] = starts[i] + dur + n_events * ev_cost * rep

    bar_arrive = finishes
    # Instrumented team synchronisation serialises per-thread event writes,
    # lengthening the barrier proportionally to team size (the dominant
    # overhead mechanism in the paper's TeaLeaf experiments, Table II).
    bar_done = (
        float(bar_arrive.max())
        + (omp.barrier_cost(n_threads) + engine.omp_team_sync * min(n_threads, 80)) * rep
    )

    if instrumented:
        for i in range(n_threads):
            loc = engine.loc_id(rank.rank, i)
            chunk_delta = pf.kernel.scaled_counts(float(units[i]))
            if i == 0:
                engine.emit(loc, Ev(ENTER, r_for, float(starts[i]), runtime_delta))
            else:
                engine.emit(loc, Ev(TEAM_BEGIN, r_parallel, float(starts[i]),
                                    WorkDelta(burst_calls=extra_bc), aux=omp_id))
                engine.emit(loc, Ev(ENTER, r_for, float(starts[i]), runtime_delta))
            # Unsynchronised shared writes (declared on the action) appear
            # as region pairs spanning each thread's chunk: concurrent
            # across the team by construction, which is precisely what the
            # happened-before race detector proves.
            for r_w in r_writes:
                engine.emit(loc, Ev(ENTER, r_w, float(starts[i]), EMPTY_DELTA))
            for r_w in reversed(r_writes):
                engine.emit(loc, Ev(LEAVE, r_w, float(bar_arrive[i]), EMPTY_DELTA))
            engine.emit(loc, Ev(LEAVE, r_for, float(bar_arrive[i]), chunk_delta))
            engine.emit(loc, Ev(OBAR_ENTER, r_bar, float(bar_arrive[i]),
                                WorkDelta(burst_calls=extra_bc)))
            wait = bar_done - float(bar_arrive[i])
            bar_delta = WorkDelta(
                omp_calls=rep,
                instr=omp.runtime_instr_per_call * rep + engine.cost.omp_wait_instructions(wait),
                burst_calls=extra_bc,
            )
            engine.emit(loc, Ev(OBAR_LEAVE, r_bar, bar_done, bar_delta, aux=(omp_id, n_threads)))

    join_done = bar_done + omp.join_cost(n_threads) * rep
    if instrumented:
        engine.emit_master(rank, Ev(JOIN, r_parallel, join_done, runtime_delta, aux=omp_id))
        engine.emit_master(rank, Ev(LEAVE, r_parallel, join_done + ev_cost, EMPTY_DELTA))
    rank.t = join_done + 2 * ev_cost
