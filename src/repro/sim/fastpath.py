"""Cached-statics fast path for the vectorized engine.

The legacy hot path re-derives, on every dispatched compute action, a
chain of values that are constant for the lifetime of a run: the work
delta of the kernel at a fixed unit count, the counting-instrumentation
cost of that delta, the contention context of the executing core, and
the long multiplication prefix of the roofline bandwidth term.  This
module caches all of it per *site* -- a ``(rank, action)`` pair for
serial compute and call bursts, a ``(rank, ParallelFor)`` pair for
OpenMP constructs -- and prebinds the per-location noise generators so
that a steady-state dispatch performs only the irreducible work: the
noise draws, the dynamic desynchronisation term, and the event appends.

Bit-identity contract
---------------------
The fast path must produce *byte-identical* traces to the legacy path
(``EngineConfig.vectorized = False``), which constrains every shortcut:

* Floating-point expressions are cached only along the exact operation
  order of the legacy code.  A cached prefix ``p = (min(...) * cf) * xf``
  multiplied by a per-call noise factor performs the same multiplication
  sequence as the legacy loop, so the bits match.  Nothing is re-
  associated, and Python ``sum()``/``max()`` are never replaced by numpy
  reductions where the reduction order could differ.
* Random draws replicate the legacy order and arithmetic exactly: the
  memory-bandwidth factor (stream keyed by NUMA domain -- *shared*
  across ranks, so global call order is preserved by drawing at the
  same program points), then the kernel jitter, then the CPU factor,
  then the OS detour.  ``_lognormal_factor`` consumes no draw at
  ``sigma <= 0``, and :class:`~repro.machine.noise.OsJitter` draws its
  Poisson count even when it comes up zero -- both behaviours are
  replicated, and the prebound generators are the *same* memoized
  objects :meth:`~repro.util.rng.RngStreams.get` hands the legacy path.
* Fault draws (:mod:`repro.machine.faults`) are position-independent
  per-key streams, so memoizing ``compute_scale`` at site build cannot
  perturb any other draw.
* Ghost replay (recovery's no-emission prefix) performs the same
  computation and the same ``flush_delta()`` resets, it only skips the
  event appends -- mirroring :meth:`Engine.emit`'s ``_live`` gate.

Emission goes directly into the measurement's per-location event lists
(the same list objects ``mark``/``rewind`` operate on), bypassing the
``emit -> record`` call chain; when an online sanitizer is attached the
fast path falls back to per-event ``record`` so the sanitizer observes
every event.
"""

from __future__ import annotations

import math
from dataclasses import astuple
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.sim import actions as A
from repro.sim.events import (
    BURST,
    ENTER,
    FORK,
    JOIN,
    LEAVE,
    OBAR_ENTER,
    OBAR_LEAVE,
    TEAM_BEGIN,
    Ev,
    Paradigm,
)
from repro.sim.kernels import EMPTY_DELTA, WorkDelta
from repro.measure.filtering import FilterRules as _FilterRules
from repro.measure.measurement import Measurement as _Measurement
from repro.measure.overhead import OverheadModel as _OverheadModel
from repro.sim.costmodel import OmpCostModel as _OmpCostModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine, _RankState

__all__ = ["FastPath"]

_exp = math.exp
_np_exp = np.exp


# ----------------------------------------------------------------------
# prebound noise draws
# ----------------------------------------------------------------------
class _LocNoise:
    """Noise draw closures for one (rank, thread) location."""

    __slots__ = ("cpu", "osd", "jit_normal")


def _bind_loc_noise(noise, rank: int, thread: int) -> _LocNoise:
    ln = _LocNoise()

    sigma = noise.cpu._sigma
    cpu_inc = noise.cpu._injections.inc
    if sigma <= 0.0:
        # factor() == 1.0 without consuming the stream; base * 1.0 == base
        def cpu(base, _inc=cpu_inc):
            _inc()
            return base
    else:
        cpu_pop = noise.cpu.buffer(rank, thread).pop

        def cpu(base, _inc=cpu_inc, _pop=cpu_pop):
            _inc()
            return base * _pop()

    ln.cpu = cpu

    rate = noise.os._rate
    duration = noise.os._duration
    if rate <= 0.0 or duration <= 0.0:
        def osd(noisy):
            return noisy
    else:
        os_rng = noise.rngs.get("os-jitter", rank=rank, thread=thread)
        os_add = noise.os._injections.add
        poisson = os_rng.poisson
        exponential = os_rng.exponential

        def osd(noisy, _p=poisson, _e=exponential, _r=rate, _d=duration, _a=os_add):
            if noisy <= 0.0:
                return noisy
            n = _p(_r * noisy)
            if n == 0:
                return noisy
            _a(int(n))
            return noisy + float(_e(_d, size=n).sum())

    ln.osd = osd
    # Creating the jitter generator eagerly is draw-free: stream state
    # only advances on draws, and rngs.get memoizes the object.
    ln.jit_normal = noise.rngs.get("kernel-jitter", rank=rank, thread=thread).normal
    return ln


def _bind_mem_noise(noise, numa_id: int):
    """Per-NUMA bandwidth-factor draw: ``pab -> pab * factor``."""
    sigma = noise.memory._sigma
    mem_inc = noise.memory._injections.inc
    if sigma <= 0.0:
        def mem(pab, _inc=mem_inc):
            _inc()
            return pab
    else:
        mem_pop = noise.memory.buffer(numa_id).pop

        def mem(pab, _inc=mem_inc, _pop=mem_pop):
            _inc()
            return pab * _pop()

    return mem


# ----------------------------------------------------------------------
# kernel pricers
# ----------------------------------------------------------------------
def _make_team_pricer(
    engine: "Engine", kernel, units: float, ctx, extra: float, ln: Optional[_LocNoise], mem
) -> Callable[[], float]:
    """Pricer for a team-parallel execution (``desync == 0`` -> fully static).

    Replicates :meth:`CostModel.kernel_time` with every input except the
    noise draws fixed, caching the multiplication prefix of the
    per-actor bandwidth in legacy operation order.
    """
    cost = engine.cost
    t_flops = units * kernel.flops_per_unit / cost.cluster.flops_per_core
    nbytes = units * kernel.bytes_per_unit
    tfe = t_flops + extra

    mem_path = not (nbytes <= 0.0 or kernel.memory_scope == "none")
    pab_static = 0.0
    relief = 1.0
    if mem_path:
        cache_factor = cost.cache.bandwidth_factor(
            ctx.cache_working_set, ctx.cache_extra_footprint
        )
        scope_bw = cost._scope_bandwidth(kernel, ctx)
        solo_bw = min(cost.memory.per_core_bw_cap, scope_bw) * cache_factor
        solo = nbytes / solo_bw if kernel.additive else max(t_flops, nbytes / solo_bw)
        relief = ctx.overlap_factor if kernel.memory_scope == "socket" else 1.0
        team = max(1, ctx.team_actors)
        if ctx.other_actors <= 0:
            a_eff = float(team)
        else:
            overlap = 1.0 if solo <= 0.0 else _exp(-max(ctx.desync, 0.0) / solo)
            overlap *= min(1.0, max(0.0, relief))
            a_eff = team + ctx.other_actors * overlap
        pab = min(
            scope_bw / (a_eff ** cost.memory.contention_exponent),
            cost.memory.per_core_bw_cap,
        )
        pab *= cache_factor
        if ctx.team_cross_socket:
            pab *= cost.cross_socket_factor
        pab_static = pab

    additive = kernel.additive
    if ln is None:
        # No noise: the whole price is a constant.
        if mem_path:
            t_mem = nbytes / pab_static
            const = tfe + t_mem * relief if additive else max(tfe, t_mem)
        else:
            const = tfe

        def price(_c=const):
            return _c

        return price

    jit_sigma = kernel.jitter
    has_jitter = jit_sigma > 0.0
    jit_mu = -0.5 * kernel.jitter**2
    jit_normal = ln.jit_normal
    cpu = ln.cpu
    osd = ln.osd

    if mem_path:
        if additive:
            def price():
                t_mem = nbytes / mem(pab_static)
                base = tfe + t_mem * relief
                if has_jitter:
                    base *= float(_np_exp(jit_normal(jit_mu, jit_sigma)))
                return osd(cpu(base))
        else:
            def price():
                t_mem = nbytes / mem(pab_static)
                base = max(tfe, t_mem)
                if has_jitter:
                    base *= float(_np_exp(jit_normal(jit_mu, jit_sigma)))
                return osd(cpu(base))
    else:
        def price():
            base = tfe
            if has_jitter:
                base = base * float(_np_exp(jit_normal(jit_mu, jit_sigma)))
            return osd(cpu(base))

    return price


def _make_serial_pricer(
    engine: "Engine", kernel, units: float, rank: int, extra: float,
    ln: Optional[_LocNoise], mem
) -> Callable[..., float]:
    """Pricer for serial compute on a rank's master thread.

    The contention term depends on the *current* spread of rank virtual
    times (the desynchronisation credit), so unlike the team pricer only
    the prefix up to the overlap estimate is static; the desync sum, the
    ``exp`` and the bandwidth division replicate the legacy per-call
    arithmetic exactly, including ``sum()``'s left-to-right order.

    The returned pricer takes the *current engine's* ``_rank_time``
    mapping as its argument (rather than capturing it), so sites remain
    shareable across engine instances.
    """
    cost = engine.cost
    core = engine.pinning.core_of(rank, 0)
    if kernel.memory_scope == "socket":
        scope_ranks = engine._ranks_on_socket.get(core.socket_id, set())
    else:
        scope_ranks = engine._ranks_on_numa.get(core.numa_id, set())
    # Same set object the legacy path iterates -> same deterministic order.
    others = [r for r in scope_ranks if r != rank]
    ctx = engine.compute_context(rank, 0, kernel)

    t_flops = units * kernel.flops_per_unit / cost.cluster.flops_per_core
    nbytes = units * kernel.bytes_per_unit
    tfe = t_flops + extra

    mem_path = not (nbytes <= 0.0 or kernel.memory_scope == "none")
    n_other = len(others)
    if not mem_path:
        if ln is None:
            def price(_rt, _c=tfe):
                return _c

            return price
        jit_sigma = kernel.jitter
        has_jitter = jit_sigma > 0.0
        jit_mu = -0.5 * kernel.jitter**2
        jit_normal = ln.jit_normal
        cpu = ln.cpu
        osd = ln.osd

        def price(_rt):
            base = tfe
            if has_jitter:
                base = base * float(_np_exp(jit_normal(jit_mu, jit_sigma)))
            return osd(cpu(base))

        return price

    cache_factor = cost.cache.bandwidth_factor(
        ctx.cache_working_set, ctx.cache_extra_footprint
    )
    scope_bw = cost._scope_bandwidth(kernel, ctx)
    solo_bw = min(cost.memory.per_core_bw_cap, scope_bw) * cache_factor
    solo = nbytes / solo_bw if kernel.additive else max(t_flops, nbytes / solo_bw)
    relief = ctx.overlap_factor if kernel.memory_scope == "socket" else 1.0
    relief_clamped = min(1.0, max(0.0, relief))
    ce = cost.memory.contention_exponent
    cap = cost.memory.per_core_bw_cap
    additive = kernel.additive

    if n_other == 0 and ln is None:
        # No contention, no noise: constant.
        pab = min(scope_bw / (1.0 ** ce), cap)
        pab *= cache_factor
        t_mem = nbytes / pab
        const = tfe + t_mem * relief if additive else max(tfe, t_mem)

        def price(_rt, _c=const):
            return _c

        return price

    if ln is not None:
        jit_sigma = kernel.jitter
        has_jitter = jit_sigma > 0.0
        jit_mu = -0.5 * kernel.jitter**2
        jit_normal = ln.jit_normal
        cpu = ln.cpu
        osd = ln.osd

    def price(rank_time):
        if n_other > 0:
            t_now = rank_time[rank]
            s = 0.0
            for r in others:
                s += abs(rank_time[r] - t_now)
            desync = s / n_other
            if solo <= 0.0:
                overlap = 1.0
            else:
                overlap = _exp(-max(desync, 0.0) / solo)
            overlap *= relief_clamped
            a_eff = 1 + n_other * overlap
        else:
            a_eff = 1.0
        pab = min(scope_bw / (a_eff ** ce), cap)
        pab *= cache_factor
        if mem is not None:
            pab = mem(pab)
        t_mem = nbytes / pab
        base = tfe + t_mem * relief if additive else max(tfe, t_mem)
        if ln is not None:
            if has_jitter:
                base = base * float(_np_exp(jit_normal(jit_mu, jit_sigma)))
            return osd(cpu(base))
        return base

    return price


# ----------------------------------------------------------------------
# dispatch sites
# ----------------------------------------------------------------------
class _SerialSite:
    """Cached state for one (rank, Compute) or (rank, CallBurst) site."""

    __slots__ = (
        "price", "scale", "delta", "loc",
        # CallBurst only:
        "region", "emit_rid", "burst_extra", "burst_delta", "burst_delta_base",
    )


class _PforSite:
    """Cached state for one (rank, ParallelFor) construct."""

    __slots__ = (
        "instrumented", "n_threads", "rep", "evc", "evc_rep", "two_evc",
        "fork_add", "join_add", "bar_add", "stagger", "evs_add",
        "r_parallel", "r_for", "r_bar", "r_writes", "r_writes_rev",
        "runtime_delta", "tb_delta", "obe_delta", "chunk_delta",
        "bar_delta", "bar_instr_static", "omp_spin",
        "pricers", "scales", "locs", "n_ev_threads",
        "static_vals",
    )


#: the engine-independent slots of :class:`_PforSite` (everything except
#: the per-engine region ids, which adoption re-interns in dispatch order)
_PFOR_STATIC_FIELDS = (
    "instrumented", "n_threads", "rep", "evc", "evc_rep", "two_evc",
    "fork_add", "join_add", "bar_add", "stagger", "evs_add",
    "runtime_delta", "tb_delta", "obe_delta", "chunk_delta",
    "bar_delta", "bar_instr_static", "omp_spin",
    "pricers", "scales", "locs", "n_ev_threads",
)

# Bound on the cross-engine identity index: entries pin action objects, so
# a program yielding fresh (non-hoisted) actions must not grow it without
# limit.  Misses past the cap just fall back to the value-keyed lookup.
_SHARED_IDS_MAX = 4096


def _shared_namespace(engine: "Engine") -> Optional[dict]:
    """Cross-engine site cache living on the :class:`CostModel` instance.

    Site statics (pricers, deltas, cost prefixes, prebound noise draws)
    depend only on the cost model, the pinning geometry, the measurement
    configuration and the action values -- none of which change between
    the repeated runs of a benchmark or campaign that share one
    ``CostModel``.  Sharing them across engines removes the dominant
    per-run site-build cost.  Everything genuinely per-engine (region
    ids, ``_rank_time``) is rebound at adoption time.

    Sharing is refused (returns ``None``) whenever a config object is
    subclassed (its behaviour is then not captured by the field
    fingerprint) or faults/restart state could make sites differ.
    """
    if engine._faults is not None or engine._restart is not None:
        return None
    m = engine.measurement
    if m is not None:
        if (
            type(m) is not _Measurement
            or type(m.overhead) is not _OverheadModel
            or type(m.filter_rules) is not _FilterRules
        ):
            return None
        mfp = (m.mode, astuple(m.overhead), tuple(m.filter_rules.rules()))
    else:
        mfp = None
    omp = engine.omp_cost
    if type(omp) is not _OmpCostModel:
        return None
    cost = engine.cost
    pin = engine.pinning
    pin_sig = tuple(
        (r, t, pin.core_of(r, t).global_id) for (r, t) in pin.locations()
    )
    key = (
        mfp, pin_sig, astuple(omp), engine._ws_per_socket,
        cost.omp_spin_instr_per_sec, cost.cross_socket_factor,
    )
    store = getattr(cost, "_fastpath_shared", None)
    if store is None:
        store = {}
        try:
            cost._fastpath_shared = store
        except AttributeError:  # a CostModel with __slots__: no sharing
            return None
    ns = store.get(key)
    if ns is None:
        if len(store) >= 8:  # bound memory across heterogeneous configs
            store.clear()
        ns = {"pfor": {}, "serial": {}, "loc_noise": {}, "mem_noise": {},
              "pfor_ids": {}, "serial_ids": {}}
        store[key] = ns
    return ns


class FastPath:
    """Per-engine adoption layer over the shared dispatch-site cache."""

    def __init__(self, engine: "Engine"):
        self.engine = engine
        noise = engine.cost.noise
        self._noise = noise
        self._rank_time = engine._rank_time
        ns = _shared_namespace(engine)
        if ns is not None:
            self._loc_noise: Dict[Tuple[int, int], _LocNoise] = ns["loc_noise"]
            self._mem_noise: Dict[int, object] = ns["mem_noise"]
            self._shared_serial: Optional[Dict] = ns["serial"]
            self._shared_pfor: Optional[Dict] = ns["pfor"]
            # Cross-engine identity index: (rank, id(action)) -> (action,
            # shared state).  Hashing an action dataclass walks every
            # field including the nested KernelSpec tuples, which on the
            # quick bench fixture costs more than the rest of the site
            # lookup combined; after the first run a hoisted action
            # resolves to its shared state without being hashed at all.
            # Each entry pins the action object, so an ``is`` check on
            # the pinned object is exact even if ids were ever recycled.
            self._shared_serial_ids: Optional[Dict] = ns["serial_ids"]
            self._shared_pfor_ids: Optional[Dict] = ns["pfor_ids"]
        else:
            self._loc_noise = {}
            self._mem_noise = {}
            self._shared_serial = None
            self._shared_pfor = None
            self._shared_serial_ids = None
            self._shared_pfor_ids = None
        self._serial: Dict[Tuple[int, object], _SerialSite] = {}
        self._pfor: Dict[Tuple[int, object], _PforSite] = {}
        # Identity-keyed front caches: hashing an action dataclass walks
        # all of its fields (including the nested KernelSpec), which costs
        # more than the whole site lookup.  Programs that re-yield hoisted
        # action instances hit here on a cheap (rank, id) key instead; the
        # entry pins the action object so its id can never be recycled.
        self._serial_by_id: Dict[Tuple[int, int], Tuple[object, _SerialSite]] = {}
        self._pfor_by_id: Dict[Tuple[int, int], Tuple[object, _PforSite]] = {}
        measurement = engine.measurement
        # Direct-append emission: valid only when no online sanitizer
        # needs to observe each event.  ``None`` -> per-event record().
        self._ev_lists: Optional[List[List[Ev]]] = None
        if measurement is not None and measurement._sanitizer is None:
            self._ev_lists = measurement._events
        # Dispatch-site cache statistics: plain ints on the hot path
        # (an obs counter call per dispatch would cost more than the
        # cached lookup it measures), flushed to the obs registry once
        # per run by :meth:`flush_metrics`.  Hit levels: ``id`` = the
        # identity-keyed front cache, ``shared_id`` = the cross-engine
        # identity index, ``value`` = the hash-keyed per-engine site
        # dict; a miss builds the site.
        self._hits_serial = [0, 0, 0]  # id, shared_id, value
        self._hits_pfor = [0, 0, 0]
        self._miss_serial = 0
        self._miss_pfor = 0

    # -- noise binding --------------------------------------------------
    def _ln(self, rank: int, thread: int) -> Optional[_LocNoise]:
        if self._noise is None:
            return None
        key = (rank, thread)
        ln = self._loc_noise.get(key)
        if ln is None:
            ln = _bind_loc_noise(self._noise, rank, thread)
            self._loc_noise[key] = ln
        return ln

    def _mem(self, numa_id: int):
        if self._noise is None:
            return None
        mem = self._mem_noise.get(numa_id)
        if mem is None:
            mem = _bind_mem_noise(self._noise, numa_id)
            self._mem_noise[numa_id] = mem
        return mem

    # -- emission -------------------------------------------------------
    def emit(self, loc: int, ev: Ev) -> None:
        """Fast equivalent of :meth:`Engine.emit` (caller checks _live)."""
        eng = self.engine
        eng._n_events += 1
        lists = self._ev_lists
        if lists is not None:
            lists[loc].append(ev)
        else:
            eng.measurement.record(loc, ev)

    # -- serial compute / burst ----------------------------------------
    def _build_serial(self, state: "_RankState", action) -> _SerialSite:
        """Engine-independent statics for one serial site (shareable)."""
        eng = self.engine
        kernel = action.kernel
        units = action.units
        rank = state.rank
        delta = kernel.scaled_counts(units).without_omp_iters()
        extra = eng.count_cost(delta)
        ln = self._ln(rank, 0)
        mem = self._mem(eng.pinning.core_of(rank, 0).numa_id)
        site = _SerialSite()
        site.price = _make_serial_pricer(eng, kernel, units, rank, extra, ln, mem)
        site.scale = eng.compute_scale(rank, 0)
        site.delta = delta
        site.loc = eng.loc_id(rank, 0)
        site.region = None
        if type(action) is A.CallBurst and eng.measurement is not None:
            site.region = action.region
            site.burst_extra = 2.0 * action.calls * eng.measurement.event_cost()
            site.burst_delta_base = WorkDelta(
                omp_iters=0.0,
                bb=delta.bb,
                stmt=delta.stmt,
                instr=delta.instr,
                burst_calls=action.calls,
            )
            site.burst_delta = site.burst_delta_base + EMPTY_DELTA
        return site

    def _shared_serial_state(self, key, state: "_RankState", action):
        shared = self._shared_serial
        if shared is None:
            return self._build_serial(state, action)
        st = shared.get(key)
        if st is None:
            st = self._build_serial(state, action)
            shared[key] = st
        return st

    def _bind_serial(self, st) -> _SerialSite:
        """Bind a shared serial-site state to this engine.

        Interning the burst region at first dispatch replicates the
        legacy path's interning order on every engine, so region ids
        stay identical run by run.
        """
        eng = self.engine
        site = _SerialSite()
        site.price = st.price
        site.scale = st.scale
        site.delta = st.delta
        site.loc = st.loc
        site.region = st.region
        site.emit_rid = None
        if st.region is not None and not eng._filtered(st.region):
            site.emit_rid = eng.regions.intern(st.region)
            site.burst_extra = st.burst_extra
            site.burst_delta = st.burst_delta
            site.burst_delta_base = st.burst_delta_base
        return site

    def _serial_site(self, state: "_RankState", action) -> _SerialSite:
        ik = (state.rank, id(action))
        ent = self._serial_by_id.get(ik)
        if ent is not None:
            self._hits_serial[0] += 1
            return ent[1]
        ids = self._shared_serial_ids
        if ids is not None:
            sent = ids.get(ik)
            if sent is not None and sent[0] is action:
                self._hits_serial[1] += 1
                site = self._bind_serial(sent[1])
                self._serial_by_id[ik] = (action, site)
                return site
        key = (state.rank, action)
        site = self._serial.get(key)
        if site is None:
            self._miss_serial += 1
            st = self._shared_serial_state(key, state, action)
            site = self._bind_serial(st)
            self._serial[key] = site
            if ids is not None and len(ids) < _SHARED_IDS_MAX:
                ids[ik] = (action, st)
        else:
            self._hits_serial[2] += 1
        self._serial_by_id[ik] = (action, site)
        return site

    def do_compute(self, state: "_RankState", action) -> None:
        site = self._serial_site(state, action)
        state.t += site.price(self._rank_time) * site.scale
        # inlined state.add_delta(site.delta)
        pd = state.pending_delta
        state.pending_delta = site.delta if pd is EMPTY_DELTA else pd + site.delta

    def do_burst(self, state: "_RankState", action) -> None:
        site = self._serial_site(state, action)
        dur = site.price(self._rank_time) * site.scale
        t0 = state.t
        if site.emit_rid is not None:
            dur += site.burst_extra
            if state.pending_delta is EMPTY_DELTA:
                full = site.burst_delta
            else:
                full = site.burst_delta_base + state.flush_delta()
            state.t = t0 + dur
            if self.engine._live:
                self.emit(site.loc, Ev(BURST, site.emit_rid, state.t, full, t_enter=t0))
        else:
            state.t = t0 + dur
            state.add_delta(site.delta)

    # -- OpenMP parallel-for --------------------------------------------
    def _build_pfor(self, state: "_RankState", pf) -> _PforSite:
        eng = self.engine
        omp = eng.omp_cost
        n_threads = state.n_threads
        rank = state.rank
        rep = max(1.0, float(pf.represents))
        instrumented = eng.measurement is not None

        site = _PforSite()
        site.instrumented = instrumented
        site.n_threads = n_threads
        site.rep = rep
        ev_cost = eng.ev_cost
        site.evc = ev_cost
        site.evc_rep = ev_cost * rep
        site.two_evc = 2 * ev_cost

        extra_bc = (rep - 1.0) / 2.0
        site.runtime_delta = WorkDelta(
            omp_calls=rep, instr=omp.runtime_instr_per_call * rep, burst_calls=extra_bc
        )
        site.tb_delta = WorkDelta(burst_calls=extra_bc)
        site.obe_delta = WorkDelta(burst_calls=extra_bc)
        site.omp_spin = eng.cost.omp_spin_instr_per_sec
        site.bar_instr_static = omp.runtime_instr_per_call * rep
        if site.omp_spin == 0.0:
            # omp_wait_instructions(wait) == 0.0 for every wait >= 0, and
            # x + 0.0 == x, so one delta serves every thread bit-exactly.
            site.bar_delta = WorkDelta(
                omp_calls=rep, instr=site.bar_instr_static, burst_calls=extra_bc
            )
        else:
            site.bar_delta = None

        site.fork_add = omp.fork_cost(n_threads) * rep
        site.join_add = omp.join_cost(n_threads) * rep
        site.bar_add = (
            omp.barrier_cost(n_threads) + eng.omp_team_sync * min(n_threads, 80)
        ) * rep

        units = pf.thread_units(n_threads)
        kernel = pf.kernel
        stagger = []
        evs_add = []
        pricers = []
        scales = []
        locs = []
        chunk_deltas = []
        n_writes2 = 2 * len(pf.shared_writes)
        for i in range(n_threads):
            stagger.append(omp.stagger(i))
            u = float(units[i])
            chunk_counts = kernel.scaled_counts(u)
            chunk_deltas.append(chunk_counts)
            count_cost = eng.count_cost(chunk_counts)
            ctx = eng.compute_context(rank, i, kernel, team_threads=n_threads)
            ln = self._ln(rank, i)
            mem = self._mem(ctx.numa_id)
            pricers.append(_make_team_pricer(eng, kernel, u, ctx, count_cost, ln, mem))
            scales.append(eng.compute_scale(rank, i))
            n_events = (5 if i > 0 else 4) + n_writes2
            evs_add.append(n_events * ev_cost * rep)
            locs.append(eng.loc_id(rank, i))
        site.stagger = stagger
        site.evs_add = evs_add
        site.pricers = pricers
        site.scales = scales
        site.locs = locs
        site.chunk_delta = chunk_deltas
        site.n_ev_threads = sum(
            (5 if i > 0 else 4) + n_writes2 for i in range(n_threads)
        )
        # prebuilt value tuple so adoption copies without getattr churn
        site.static_vals = tuple(getattr(site, f) for f in _PFOR_STATIC_FIELDS)
        return site

    def _shared_pfor_state(self, key, state: "_RankState", pf):
        shared = self._shared_pfor
        if shared is None:
            return self._build_pfor(state, pf)
        st = shared.get(key)
        if st is None:
            st = self._build_pfor(state, pf)
            shared[key] = st
        return st

    def _bind_pfor(self, st, pf) -> _PforSite:
        """Bind a shared pfor-site state to this engine.

        Region interning happens here, at the site's first dispatch on
        *this* engine -- the same program point at which the legacy path
        interns -- so per-run region-id assignment is unchanged.
        """
        site = _PforSite()
        for f, v in zip(_PFOR_STATIC_FIELDS, st.static_vals):
            setattr(site, f, v)
        if site.instrumented:
            intern = self.engine.regions.intern
            site.r_parallel = intern(f"omp_parallel_{pf.region}", Paradigm.OMP)
            site.r_for = intern(f"omp_for_{pf.region}", Paradigm.OMP)
            site.r_bar = intern(f"omp_ibarrier_{pf.region}", Paradigm.OMP)
            site.r_writes = tuple(
                intern(f"omp_shared_write_{var}", Paradigm.OMP)
                for var in pf.shared_writes
            )
        else:
            site.r_parallel = site.r_for = site.r_bar = -1
            site.r_writes = ()
        site.r_writes_rev = tuple(reversed(site.r_writes))
        return site

    def _pfor_site(self, ik, state: "_RankState", pf) -> _PforSite:
        ids = self._shared_pfor_ids
        if ids is not None:
            sent = ids.get(ik)
            if sent is not None and sent[0] is pf:
                self._hits_pfor[1] += 1
                site = self._bind_pfor(sent[1], pf)
                self._pfor_by_id[ik] = (pf, site)
                return site
        key = (state.rank, pf)
        site = self._pfor.get(key)
        if site is None:
            self._miss_pfor += 1
            st = self._shared_pfor_state(key, state, pf)
            site = self._bind_pfor(st, pf)
            self._pfor[key] = site
            if ids is not None and len(ids) < _SHARED_IDS_MAX:
                ids[ik] = (pf, st)
        else:
            self._hits_pfor[2] += 1
        self._pfor_by_id[ik] = (pf, site)
        return site

    def parallel_for(self, state: "_RankState", pf) -> None:
        eng = self.engine
        ik = (state.rank, id(pf))
        ent = self._pfor_by_id.get(ik)
        if ent is not None:
            self._hits_pfor[0] += 1
            site = ent[1]
        else:
            site = self._pfor_site(ik, state, pf)
        omp_id = eng._next_omp
        eng._next_omp = omp_id + 1
        n = site.n_threads
        instrumented = site.instrumented
        live = eng._live
        t = state.t
        locs = site.locs
        # direct-append fast path: live + columnar per-location lists
        lists = self._ev_lists if live else None
        r_parallel = site.r_parallel

        if instrumented:
            d_enter = state.pending_delta
            state.pending_delta = EMPTY_DELTA
            if lists is not None:
                ap0 = lists[locs[0]].append
                ap0(Ev(ENTER, r_parallel, t, d_enter))
                ap0(Ev(FORK, r_parallel, t + site.evc, site.runtime_delta, aux=omp_id))
            elif live:
                self.emit(locs[0], Ev(ENTER, r_parallel, t, d_enter))
                self.emit(locs[0],
                          Ev(FORK, r_parallel, t + site.evc, site.runtime_delta, aux=omp_id))
            t += site.evc
            t += site.evc_rep

        fork_done = t + site.fork_add
        starts = []
        finishes = []
        for pricer, scale, stag, eadd in zip(
            site.pricers, site.scales, site.stagger, site.evs_add
        ):
            start = fork_done + stag
            starts.append(start)
            finishes.append(start + pricer() * scale + eadd)

        bar_done = max(finishes) + site.bar_add

        if instrumented and live:
            r_for = site.r_for
            r_bar = site.r_bar
            r_writes = site.r_writes
            r_writes_rev = site.r_writes_rev
            runtime_delta = site.runtime_delta
            tb_delta = site.tb_delta
            obe_delta = site.obe_delta
            chunk_delta = site.chunk_delta
            bar_delta = site.bar_delta
            obar_aux = (omp_id, n)
            if lists is not None:
                for i in range(n):
                    ap = lists[locs[i]].append
                    start = starts[i]
                    fin = finishes[i]
                    if i > 0:
                        ap(Ev(TEAM_BEGIN, r_parallel, start, tb_delta, aux=omp_id))
                    ap(Ev(ENTER, r_for, start, runtime_delta))
                    for r_w in r_writes:
                        ap(Ev(ENTER, r_w, start, EMPTY_DELTA))
                    for r_w in r_writes_rev:
                        ap(Ev(LEAVE, r_w, fin, EMPTY_DELTA))
                    ap(Ev(LEAVE, r_for, fin, chunk_delta[i]))
                    ap(Ev(OBAR_ENTER, r_bar, fin, obe_delta))
                    if bar_delta is None:
                        wait = bar_done - fin
                        bd = WorkDelta(
                            omp_calls=site.rep,
                            instr=site.bar_instr_static + site.omp_spin * wait,
                            burst_calls=tb_delta.burst_calls,
                        )
                    else:
                        bd = bar_delta
                    ap(Ev(OBAR_LEAVE, r_bar, bar_done, bd, aux=obar_aux))
                eng._n_events += site.n_ev_threads
            else:
                record = eng.measurement.record
                appended = 0
                for i in range(n):
                    evs = []
                    start = starts[i]
                    fin = finishes[i]
                    if i > 0:
                        evs.append(Ev(TEAM_BEGIN, r_parallel, start, tb_delta, aux=omp_id))
                    evs.append(Ev(ENTER, r_for, start, runtime_delta))
                    for r_w in r_writes:
                        evs.append(Ev(ENTER, r_w, start, EMPTY_DELTA))
                    for r_w in r_writes_rev:
                        evs.append(Ev(LEAVE, r_w, fin, EMPTY_DELTA))
                    evs.append(Ev(LEAVE, r_for, fin, chunk_delta[i]))
                    evs.append(Ev(OBAR_ENTER, r_bar, fin, obe_delta))
                    if bar_delta is None:
                        wait = bar_done - fin
                        bd = WorkDelta(
                            omp_calls=site.rep,
                            instr=site.bar_instr_static + site.omp_spin * wait,
                            burst_calls=tb_delta.burst_calls,
                        )
                    else:
                        bd = bar_delta
                    evs.append(Ev(OBAR_LEAVE, r_bar, bar_done, bd, aux=obar_aux))
                    loc = locs[i]
                    for ev in evs:
                        record(loc, ev)
                    appended += len(evs)
                eng._n_events += appended

        join_done = bar_done + site.join_add
        if instrumented:
            if lists is not None:
                ap0(Ev(JOIN, r_parallel, join_done, site.runtime_delta, aux=omp_id))
                ap0(Ev(LEAVE, r_parallel, join_done + site.evc, EMPTY_DELTA))
                eng._n_events += 4  # ENTER + FORK + JOIN + LEAVE
            elif live:
                self.emit(locs[0],
                          Ev(JOIN, r_parallel, join_done, site.runtime_delta, aux=omp_id))
                self.emit(locs[0],
                          Ev(LEAVE, r_parallel, join_done + site.evc, EMPTY_DELTA))
        state.t = join_done + site.two_evc

    # -- observability --------------------------------------------------
    def flush_metrics(self) -> None:
        """Flush the dispatch-site cache statistics to the obs registry.

        Called once at the end of :meth:`Engine._run`; a disabled
        registry makes this a handful of no-op calls.
        """
        from repro import obs

        for kind, hits, misses in (
            ("serial", self._hits_serial, self._miss_serial),
            ("pfor", self._hits_pfor, self._miss_pfor),
        ):
            for level, n in zip(("id", "shared_id", "value"), hits):
                if n:
                    obs.counter("sim.fastpath.site_hits",
                                kind=kind, level=level).add(n)
            if misses:
                obs.counter("sim.fastpath.site_misses", kind=kind).add(misses)
