"""Simulated coordinated checkpoint/restart recovery.

:func:`run_with_recovery` drives the engine through fail-stop crashes
(:class:`~repro.sim.engine.SimCrashError`): each crash rolls the job back
to the most recent completed :class:`~repro.sim.actions.Checkpoint` and
re-runs the engine with a :class:`~repro.sim.engine.RestartPlan`.

The trace produced by a recovered run is the *kept prefix* of every
previous attempt plus the final live segment.  To make the recovered
trace indistinguishable from one recorded by a single continuous
measurement, each attempt **ghost-replays** the prefix: the new engine
re-executes the program from the start with event emission disabled but
with identical costs and identical fault draws, so region interning,
match ids, collective ids and scheduling order are bit-identical to the
attempts that recorded the prefix.  This requires

* a **fresh cost model per attempt** with the same seed -- noise streams
  are positional, and the ghost consumes them in the recorded order --
  hence the ``cost_factory`` parameter, and
* position-independent fault draws -- which is how
  :class:`~repro.machine.faults.FaultModel` is built (one shared
  instance serves all attempts).

Termination is guaranteed: every fired crash point is added to the
plan's ``suppressed`` set and never fires again, the fault model draws
at most one crash per rank, and ``max_restarts`` bounds the loop
regardless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro import obs
from repro.machine.faults import FaultModel
from repro.machine.network import NetworkModel
from repro.machine.topology import Cluster
from repro.sim.engine import Engine, EngineConfig, RestartPlan, SimCrashError, SimResult
from repro.sim.program import Program
from repro.util.validation import check_nonnegative

__all__ = [
    "RecoveryConfig",
    "RestartRecord",
    "RecoveryOutcome",
    "ExcessiveRestartsError",
    "run_with_recovery",
]


@dataclass(frozen=True)
class RecoveryConfig:
    """Knobs of the simulated restart protocol."""

    #: give up after this many restarts (a run with more is pathological)
    max_restarts: int = 8
    #: wall time (seconds, virtual) to detect the failure, re-spawn the
    #: job and read the checkpoint back from stable storage
    restart_delay: float = 5e-3

    def __post_init__(self):
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {self.max_restarts}")
        check_nonnegative("restart_delay", self.restart_delay)


@dataclass(frozen=True)
class RestartRecord:
    """One crash and the restart that recovered from it."""

    attempt: int  # 1-based attempt that crashed
    rank: int  # rank that failed
    trigger: str  # "progress" | "time"
    at: Union[int, float]  # drawn crash point (action index or sim time)
    epoch: int  # checkpoints completed when the crash hit
    t_crash: float  # virtual time of failure detection
    t_restart: float  # virtual time all ranks resumed at


class ExcessiveRestartsError(RuntimeError):
    """The run crashed more than ``max_restarts`` times."""

    def __init__(self, limit: int, restarts: Tuple[RestartRecord, ...]):
        ranks = [rec.rank for rec in restarts]
        super().__init__(
            f"gave up after {len(restarts)} restarts (limit {limit}); "
            f"crashed ranks: {ranks}"
        )
        self.restarts = restarts


@dataclass
class RecoveryOutcome:
    """Result of a (possibly recovered) run."""

    result: SimResult
    restarts: Tuple[RestartRecord, ...] = field(default_factory=tuple)

    @property
    def n_restarts(self) -> int:
        return len(self.restarts)


def run_with_recovery(
    program: Program,
    cluster: Cluster,
    cost_factory: Callable[[], object],
    faults: FaultModel,
    measurement=None,
    config: Optional[EngineConfig] = None,
    network: Optional[NetworkModel] = None,
    recovery: Optional[RecoveryConfig] = None,
) -> RecoveryOutcome:
    """Run ``program`` to completion, restarting after fail-stop crashes.

    ``cost_factory`` must build a *fresh* cost model (same seed) on every
    call; ``measurement`` (optional) accumulates one trace across all
    attempts via mark/rewind/rebind.  Raises
    :class:`ExcessiveRestartsError` past ``recovery.max_restarts``.
    """
    recovery = recovery or RecoveryConfig()
    #: epoch -> (virtual time after the checkpoint, measurement mark);
    #: epoch 0 is the job start (crash before any checkpoint -> from scratch)
    marks: Dict[int, Tuple[float, object]] = {0: (0.0, None)}
    suppressed: set = set()
    applied: List[Tuple[int, float]] = []
    restarts: List[RestartRecord] = []
    plan: Optional[RestartPlan] = None
    attempt = 0
    c_attempts = obs.counter("recovery.attempts")

    with obs.span("recovery.run", program=program.name):
        while True:
            attempt += 1
            c_attempts.inc()
            engine = Engine(
                program,
                cluster,
                cost_factory(),
                measurement=measurement,
                config=config,
                network=network,
                faults=faults,
                restart=plan,
            )
            try:
                result = engine.run()
            except SimCrashError as crash:
                marks.update(engine.checkpoint_marks)
                if len(restarts) >= recovery.max_restarts:
                    raise ExcessiveRestartsError(
                        recovery.max_restarts, tuple(restarts)
                    ) from crash
                epoch = crash.epoch
                t_ckpt, mark = marks[epoch]
                t_restart = max(crash.t_crash, t_ckpt) + recovery.restart_delay
                # Jumps at epochs >= the rollback target belong to trace
                # segments the rewind discards; replace them.
                applied = [(ep, tr) for (ep, tr) in applied if ep < epoch]
                applied.append((epoch, t_restart))
                suppressed.add(crash.point.key)
                if measurement is not None:
                    measurement.rewind(mark)
                restarts.append(RestartRecord(
                    attempt=attempt,
                    rank=crash.point.rank,
                    trigger=crash.point.trigger,
                    at=crash.point.at,
                    epoch=epoch,
                    t_crash=crash.t_crash,
                    t_restart=t_restart,
                ))
                plan = RestartPlan(
                    restarts=tuple(applied),
                    suppressed=frozenset(suppressed),
                    restart_id=len(restarts) - 1,
                )
                continue
            return RecoveryOutcome(result=result, restarts=tuple(restarts))
