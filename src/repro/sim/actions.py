"""Actions a rank program can yield to the simulation engine.

A rank program is a generator; each ``yield`` hands the engine one action
and receives the action's result (e.g. a request id for non-blocking
communication).  The vocabulary mirrors what the three mini-apps need --
and what the paper's Score-P extension instruments: user regions, MPI
point-to-point and collectives on the world communicator, and OpenMP
parallel loops with fork/join and implicit barriers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.sim.kernels import KernelSpec

__all__ = [
    "ANY_SOURCE",
    "Action",
    "Enter",
    "Leave",
    "Compute",
    "CallBurst",
    "ParallelFor",
    "Send",
    "Recv",
    "Isend",
    "Irecv",
    "Wait",
    "Waitall",
    "Allreduce",
    "Alltoall",
    "Allgather",
    "Bcast",
    "Reduce",
    "Barrier",
    "Checkpoint",
]


#: Wildcard source for :class:`Recv`/:class:`Irecv` (``MPI_ANY_SOURCE``).
#: A wildcard receive matches whichever pending send arrives first, so the
#: matched order depends on *physical* message timing -- the one construct
#: in this vocabulary that makes logical traces noise-sensitive.  The
#: determinism prover (:mod:`repro.verify.determinism`) flags every use.
ANY_SOURCE = -1


class Action:
    """Marker base class for everything a program may yield."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# call-path structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Enter(Action):
    """Enter an instrumented user function (pushes onto the call path)."""

    region: str


@dataclass(frozen=True)
class Leave(Action):
    """Leave the innermost instrumented user function."""

    region: Optional[str] = None  # optional sanity check against the stack


# ---------------------------------------------------------------------------
# computation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Compute(Action):
    """Serial computation on the calling (master) thread.

    ``units`` scales the per-unit costs of ``kernel``.  Serial compute
    never contributes OpenMP loop iterations, regardless of the spec (the
    engine enforces this), because Opari2 only counts instrumented OpenMP
    loop constructs.
    """

    kernel: KernelSpec
    units: float


@dataclass(frozen=True)
class CallBurst(Action):
    """``calls`` consecutive instrumented invocations of a small function.

    Real instrumented codes record an enter and a leave event for *every*
    unfiltered call -- MiniFE's per-row assembly operators produce millions.
    Emitting each one individually is infeasible in a Python trace, so a
    burst is recorded as a single aggregate event pair that *represents*
    ``calls`` pairs: per-event measurement overhead and the lt_1 increment
    are both scaled by ``2 * calls``, and the analysis attributes the
    burst's whole severity to the child call path ``region``.
    """

    region: str
    calls: float
    kernel: KernelSpec
    units: float


@dataclass(frozen=True)
class ParallelFor(Action):
    """An OpenMP combined parallel worksharing loop (``omp parallel for``).

    ``total_units`` units of ``kernel`` are distributed over the rank's
    threads; ``shares`` optionally overrides the default equal static
    split with per-thread fractions (they are normalized).  The construct
    models fork, per-thread chunk execution, the implicit barrier, and
    join -- each a recorded event, as with Opari2 instrumentation.

    ``represents`` is the construct-compression factor: one simulated
    construct standing for N identical real ones executed back-to-back
    (TeaLeaf runs *thousands* of CG iterations; simulating each would blow
    up the trace).  All per-construct costs -- fork/join/barrier, recorded
    events, instrumentation overhead, OpenMP-runtime work counts (the
    X/Y effort constants) -- scale by ``represents``; ``total_units`` must
    already be the total over all represented constructs.
    """

    region: str
    kernel: KernelSpec
    total_units: float
    shares: Optional[Tuple[float, ...]] = None
    represents: float = 1.0
    #: Names of shared variables every iteration *writes without
    #: synchronisation* (the classic missing-``reduction``-clause bug).
    #: The engine records one zero-width ``omp_shared_write_<name>``
    #: region pair per thread inside the chunk so the happened-before
    #: race detector (:mod:`repro.verify.races`) can prove the writes
    #: concurrent; correct programs leave this empty.
    shared_writes: Tuple[str, ...] = ()

    def thread_units(self, n_threads: int) -> np.ndarray:
        """Units assigned to each of ``n_threads`` threads."""
        if self.shares is None:
            return np.full(n_threads, self.total_units / n_threads)
        shares = np.asarray(self.shares, dtype=float)
        if shares.size != n_threads:
            raise ValueError(
                f"ParallelFor {self.region!r}: {shares.size} shares for {n_threads} threads"
            )
        if shares.min() < 0 or shares.sum() <= 0:
            raise ValueError(f"ParallelFor {self.region!r}: invalid shares {self.shares}")
        return self.total_units * shares / shares.sum()


# ---------------------------------------------------------------------------
# MPI point-to-point
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Send(Action):
    """Blocking standard-mode send (eager below the rendezvous threshold)."""

    dest: int
    tag: int
    nbytes: float


@dataclass(frozen=True)
class Recv(Action):
    """Blocking receive; matches sends in posting order per (src, tag).

    ``source`` may be :data:`ANY_SOURCE`: the receive then matches the
    pending send (any source, same tag) with the earliest physical
    arrival -- deliberately timing-dependent, as in real MPI.

    The ``yield`` evaluates to the matched source rank (the
    ``status.MPI_SOURCE`` analog), so programs *can* branch on a
    wildcard's outcome -- exactly the noise-dependent control flow the
    determinism prover exists to flag.
    """

    source: int
    tag: int


@dataclass(frozen=True)
class Isend(Action):
    """Non-blocking send; yields a request id."""

    dest: int
    tag: int
    nbytes: float


@dataclass(frozen=True)
class Irecv(Action):
    """Non-blocking receive; yields a request id.

    ``source`` may be :data:`ANY_SOURCE` (see :class:`Recv`).
    """

    source: int
    tag: int


@dataclass(frozen=True)
class Wait(Action):
    """Wait for a single request."""

    request: int


@dataclass(frozen=True)
class Waitall(Action):
    """Wait for a set of requests (LULESH/TeaLeaf halo-exchange idiom)."""

    requests: Tuple[int, ...]

    def __init__(self, requests: Sequence[int]):
        object.__setattr__(self, "requests", tuple(requests))


# ---------------------------------------------------------------------------
# MPI collectives (world communicator)
# ---------------------------------------------------------------------------


# All collectives take ``represents``: one simulated call standing for N
# identical back-to-back calls (iteration compression, see ParallelFor).
# Costs, per-event overheads and lt_1 event counts scale by N; *wait*
# severities are compression-invariant because the inter-rank skew of the
# aggregated compute equals the summed per-iteration skews.


@dataclass(frozen=True)
class Allreduce(Action):
    """MPI_Allreduce -- the source of the paper's Wait-at-NxN severities.

    ``commutative=False`` declares a reduction operator whose *result
    value* depends on the combine order (floating-point sums under
    ``MPI_Op`` trees, for example).  The event structure and every
    timestamp stay noise-independent either way -- only the reduced
    value is order-sensitive -- so the determinism prover reports it as
    a value-determinism warning (DET004), not a trace-verdict change.
    """

    nbytes: float = 8.0
    represents: float = 1.0
    commutative: bool = True


@dataclass(frozen=True)
class Alltoall(Action):
    nbytes_per_pair: float = 8.0
    represents: float = 1.0


@dataclass(frozen=True)
class Allgather(Action):
    nbytes_per_rank: float = 8.0
    represents: float = 1.0


@dataclass(frozen=True)
class Bcast(Action):
    root: int = 0
    nbytes: float = 8.0
    represents: float = 1.0


@dataclass(frozen=True)
class Reduce(Action):
    root: int = 0
    nbytes: float = 8.0
    represents: float = 1.0
    commutative: bool = True  # see Allreduce


@dataclass(frozen=True)
class Barrier(Action):
    represents: float = 1.0


@dataclass(frozen=True)
class Checkpoint(Action):
    """Coordinated application-level checkpoint (restart boundary).

    Semantically a barrier followed by a collective write of ``nbytes``
    of checkpoint state per rank.  The engine records the completed epoch
    as a valid restart point: after a :class:`~repro.machine.faults.
    RankCrash`, the recovery protocol (:mod:`repro.sim.recovery`) replays
    the job from the most recent completed checkpoint.  Programs should
    place checkpoints at quiescent points -- no point-to-point message
    may be in flight across the checkpoint (the linter's MPI009 warns
    about messages crossing a checkpoint boundary).
    """

    nbytes: float = 0.0
    represents: float = 1.0


#: Map collective action classes to the cost-model operation name and the
#: MPI region name recorded in the trace.
COLLECTIVE_INFO = {
    Allreduce: ("allreduce", "MPI_Allreduce"),
    Alltoall: ("alltoall", "MPI_Alltoall"),
    Allgather: ("allgather", "MPI_Allgather"),
    Bcast: ("bcast", "MPI_Bcast"),
    Reduce: ("reduce", "MPI_Reduce"),
    Barrier: ("barrier", "MPI_Barrier"),
    Checkpoint: ("barrier", "MPI_Checkpoint"),
}
