"""The discrete-event simulation engine.

Rank programs (generators) are advanced in global virtual-time order.
Blocking MPI semantics -- receive matching, rendezvous hand-shakes,
collective completion -- park a rank until a partner action resolves it.
Every instrumented happening is emitted as a trace event to the attached
measurement object (or silently skipped in uninstrumented reference runs).

Measurement feedback
--------------------
Instrumentation perturbs the execution, which is the subject of the
paper's Table I / Table II / Fig. 2.  Three perturbation channels feed
back from the measurement object into virtual time:

* ``event_cost`` seconds per recorded event (and per *represented* call of
  an aggregated :class:`~repro.sim.actions.CallBurst`),
* ``count_cost`` seconds of extra flop-side time for basic-block /
  statement counting instrumentation (hidden in memory-bound kernels),
* ``footprint_per_socket`` bytes of trace-buffer memory that join the
  application working set in the cache model (the TeaLeaf effect), and
* ``mpi_sync_cost`` seconds per MPI operation for logical modes, modelling
  the extra counter-synchronisation messages the paper's implementation
  sends inside the MPI wrappers.

Faults and recovery
-------------------
An optional :class:`~repro.machine.faults.FaultModel` injects seeded
faults: message loss/duplication and link degradation perturb transfer
times (and emit ``FAULT`` marker events on the affected receiver), a
straggler core scales compute durations, and a drawn rank crash raises
:class:`SimCrashError` out of :meth:`Engine.run`.  The checkpoint/restart
protocol lives in :mod:`repro.sim.recovery`: it re-runs the engine with a
:class:`RestartPlan`, under which the engine *ghost-replays* the already
traced execution prefix -- same costs, same draws, no event emission --
up to the restart checkpoint, jumps every rank to the resume time, emits
one ``RESTART`` event per rank and goes live.  Ghost replay keeps region
interning, match ids and collective ids bit-identical to the prefix the
trace already contains, which is what makes recovered traces pass the
sanitizer.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro import obs
from repro.machine.faults import CrashPoint, FaultModel
from repro.machine.network import CollectiveCostModel, NetworkModel
from repro.machine.topology import Cluster
from repro.sim import actions as A
from repro.sim.costmodel import ComputeContext, CostModel, OmpCostModel
from repro.sim.equeue import SoAEventQueue
from repro.sim.fastpath import FastPath
from repro.sim.events import (
    BURST,
    COLL_END,
    ENTER,
    FAULT,
    LEAVE,
    MPI_RECV,
    MPI_SEND,
    RESTART,
    Ev,
    Paradigm,
    RegionRegistry,
)
from repro.sim.kernels import EMPTY_DELTA, KernelSpec, WorkDelta
from repro.sim.openmp import execute_parallel_for
from repro.sim.program import Program, ProgramContext

__all__ = ["Engine", "SimResult", "EngineConfig", "SimCrashError", "RestartPlan"]

#: scheduler-step outcomes (identity-compared sentinels)
_DONE = object()  # rank generator exhausted
_PARKED = object()  # blocked, or resumed (re-queued) during its own dispatch
_RUNNABLE = object()  # still runnable; caller decides slice vs re-queue


@dataclass
class EngineConfig:
    """Fixed costs of the simulated MPI library and OpenMP runtime."""

    mpi_call_overhead: float = 0.8e-6  # entering + internal work of an MPI call
    eager_copy_bandwidth: float = 8.0e9  # bytes/s memcpy into the eager buffer
    checkpoint_write_bandwidth: float = 2.0e9  # bytes/s per rank to stable storage
    omp: OmpCostModel = field(default_factory=OmpCostModel)
    #: Use the batch/cached hot path (SoA scheduler queue, per-site cost
    #: caches, run-slicing, direct emission).  Bit-identical to the legacy
    #: per-event path, which remains available as the ``False`` oracle.
    vectorized: bool = True


class SimCrashError(RuntimeError):
    """A drawn fail-stop crash terminated the run.

    Carries what the recovery protocol (:mod:`repro.sim.recovery`) needs:
    the fired :class:`~repro.machine.faults.CrashPoint`, the number of
    application checkpoints completed before the crash (the restart
    epoch) and the virtual time at which the failure was detected.
    """

    def __init__(self, point: CrashPoint, epoch: int, t_crash: float):
        unit = "action" if point.trigger == "progress" else "t"
        super().__init__(
            f"rank {point.rank} fail-stop at {unit}={point.at:g} "
            f"(t_detect={t_crash:.6g}s, {epoch} checkpoint(s) completed)"
        )
        self.point = point
        self.epoch = epoch
        self.t_crash = t_crash


@dataclass(frozen=True)
class RestartPlan:
    """Instructions for re-running the engine after fail-stop crashes.

    ``restarts`` lists the checkpoint epochs still visible in the kept
    trace prefix together with their resume times, in strictly
    increasing epoch order; the engine ghost-replays (no emission, same
    costs and draws) up to each epoch, jumps every rank to the resume
    time, and goes *live* after applying the last entry, emitting one
    ``RESTART`` event per rank with ``aux = (restart_id, n_ranks)``.
    ``suppressed`` holds the :attr:`~repro.machine.faults.CrashPoint.key`
    of every crash that already fired so it cannot fire again.
    """

    restarts: Tuple[Tuple[int, float], ...]
    suppressed: frozenset = frozenset()
    restart_id: int = 0


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    runtime: float
    phase_times: Dict[str, float]
    rank_end_times: List[float]
    n_events: int
    trace: Optional[object] = None  # RawTrace when instrumented

    def phase(self, name: str) -> float:
        try:
            return self.phase_times[name]
        except KeyError:
            raise KeyError(
                f"phase {name!r} not tracked; available: {sorted(self.phase_times)}"
            ) from None


class _Request:
    """A non-blocking communication request."""

    __slots__ = ("rid", "kind", "complete_t", "match_id", "send_t", "waiter",
                 "fault_rid", "any_rid")

    def __init__(self, rid: int, kind: str):
        self.rid = rid
        self.kind = kind  # "send" | "recv"
        self.complete_t: Optional[float] = None
        self.match_id: Optional[int] = None
        self.send_t: float = 0.0
        self.waiter: Optional[_RankState] = None
        self.fault_rid: int = -1  # fault region id to emit at wait completion
        #: region id of the wildcard Irecv call (-1 for a named source);
        #: wildcard receive-complete records are emitted under it so the
        #: race detector can see wildcard-ness in the trace
        self.any_rid: int = -1


class _RankState:
    """Mutable per-rank execution state."""

    __slots__ = (
        "rank",
        "gen",
        "t",
        "n_threads",
        "stack",
        "pending_delta",
        "pending_result",
        "requests",
        "next_req",
        "blocked",
        "done",
        "wait_t0",
        "wait_requests",
        "wait_region",
        "epoch",
        "block_site",
        "n_actions",
    )

    def __init__(self, rank: int, gen: Generator, n_threads: int):
        self.rank = rank
        self.gen = gen
        self.t = 0.0
        self.n_threads = n_threads
        self.stack: List[str] = []
        self.pending_delta: WorkDelta = EMPTY_DELTA
        self.pending_result: Any = None
        self.requests: Dict[int, _Request] = {}
        self.next_req = 0
        self.blocked = False
        self.done = False
        self.wait_t0 = 0.0
        self.wait_requests: List[int] = []
        self.wait_region: int = -1
        self.epoch = 0  # bumped on every resume to invalidate stale heap entries
        #: (action description, call-path snapshot) of the current block site
        self.block_site: Optional[Tuple[str, Tuple[str, ...]]] = None
        self.n_actions = 0  # dispatched actions (progress-triggered crashes)

    def flush_delta(self) -> WorkDelta:
        d = self.pending_delta
        self.pending_delta = EMPTY_DELTA
        return d

    def add_delta(self, d: WorkDelta) -> None:
        if self.pending_delta is EMPTY_DELTA:
            self.pending_delta = d
        else:
            self.pending_delta = self.pending_delta + d

    def new_request(self, kind: str) -> _Request:
        req = _Request(self.next_req, kind)
        self.requests[self.next_req] = req
        self.next_req += 1
        return req


class Engine:
    """Simulate ``program`` on ``cluster`` with optional measurement.

    Parameters
    ----------
    program:
        The application (supplies rank generators and job geometry).
    cluster:
        Hardware model.
    cost:
        Physical cost model (roofline + noise).  Its ``noise`` attribute
        may be ``None`` for fully deterministic runs.
    measurement:
        A measurement object from :mod:`repro.measure`, or ``None`` for an
        uninstrumented reference run.
    sanitize:
        When true, the measurement checks trace invariants online as
        events are emitted (see :mod:`repro.verify.online`); requires a
        measurement object.
    faults:
        Optional :class:`~repro.machine.faults.FaultModel`; drawn rank
        crashes raise :class:`SimCrashError` out of :meth:`run`.
    restart:
        Optional :class:`RestartPlan` (set by :mod:`repro.sim.recovery`);
        the engine ghost-replays the traced prefix and resumes emission
        at the last restart point.  Requires a measurement that supports
        ``rebind`` (events before the plan's restarts were already
        recorded in a previous attempt).
    """

    def __init__(
        self,
        program: Program,
        cluster: Cluster,
        cost: CostModel,
        measurement=None,
        config: Optional[EngineConfig] = None,
        network: Optional[NetworkModel] = None,
        sanitize: bool = False,
        faults=None,
        restart: Optional[RestartPlan] = None,
    ):
        self.program = program
        self.cluster = cluster
        self.cost = cost
        self.measurement = measurement
        self.config = config or EngineConfig()
        self.omp_cost = self.config.omp
        self.pinning = program.pinning(cluster)
        self.network = network or NetworkModel(cluster)
        self.collectives = CollectiveCostModel(self.network)
        self.regions = RegionRegistry()

        # Location ids: rank-major, thread-minor.
        self._loc_base: Dict[int, int] = {}
        base = 0
        for r in self.pinning.ranks:
            self._loc_base[r] = base
            base += self.pinning.threads_of(r)
        self.n_locations = base

        # Fault injection and checkpoint/restart state.
        self._faults = faults
        self._restart = restart
        self._restart_idx = 0
        #: Emission gate: False while ghost-replaying an already traced
        #: prefix during recovery (costs and draws still happen so the
        #: replay is bit-identical to the attempt that produced the prefix).
        self._live = restart is None or not restart.restarts
        self._ckpt_count = 0
        #: completed checkpoint epoch -> (virtual time after it, measurement mark)
        self.checkpoint_marks: Dict[int, Tuple[float, Any]] = {}
        self._chan_occurrence: Dict[Tuple[int, int, int], int] = {}
        self._crashes: Dict[int, CrashPoint] = {}
        if faults is not None:
            sched = faults.crash_schedule(self.pinning.n_ranks)
            suppressed = restart.suppressed if restart is not None else frozenset()
            self._crashes = {r: cp for r, cp in sched.items() if cp.key not in suppressed}
        if faults is not None or restart is not None:
            # Interned eagerly so region ids do not depend on when (or
            # whether) the first fault fires: a recovery ghost replay must
            # reproduce the exact interning order of the traced prefix.
            self._rid_fault_loss = self.regions.intern("fault_msg_loss", Paradigm.MEASUREMENT)
            self._rid_fault_dup = self.regions.intern("fault_msg_dup", Paradigm.MEASUREMENT)
            self._rid_restart = self.regions.intern("sim_restart", Paradigm.MEASUREMENT)
        else:
            self._rid_fault_loss = self._rid_fault_dup = self._rid_restart = -1

        # Measurement feedback, cached for the hot path.
        if sanitize and measurement is None:
            raise ValueError("sanitize=True requires a measurement object")
        if measurement is not None:
            if sanitize:
                measurement.enable_sanitize()
            if restart is not None:
                measurement.rebind(self)
            else:
                measurement.begin(self)
            self.ev_cost = measurement.event_cost()
            self._mpi_sync_cost = measurement.mpi_sync_cost()
            self._footprint = measurement.footprint_per_socket()
            self.omp_team_sync = measurement.omp_team_sync_cost()
            self._overlap_factor = measurement.overlap_relief()
        else:
            self.ev_cost = 0.0
            self._mpi_sync_cost = 0.0
            self._footprint = 0.0
            self.omp_team_sync = 0.0
            self._overlap_factor = 1.0
        self._ws_per_socket = program.working_set_per_socket(self.pinning)

        # Runtime state.
        self._ranks: Dict[int, _RankState] = {}
        self._heap: List[Tuple[float, int, int, int]] = []  # (t, seq, rank, epoch)
        self._seq = 0
        self._channels: Dict[Tuple[int, int, int], Dict[str, deque]] = {}
        #: (dst, tag) -> parked ANY_SOURCE receives, in posting order
        self._any_recvs: Dict[Tuple[int, int], deque] = {}
        #: per-destination posted-receive counter; arbitrates between a
        #: parked named receive and a parked wildcard receive the way MPI
        #: does -- by posting order at the receiver
        self._recv_seq: Dict[int, int] = {}
        self._coll: Dict[int, dict] = {}  # instance seq -> state
        self._coll_seq: Dict[int, int] = {}  # per-rank collective counter
        self._next_match = 0
        self._next_coll = 0
        self._next_omp = 0
        self._n_events = 0
        self._phase_enter: Dict[str, float] = {}
        #: per-run Enter/Leave cache: region -> (is_phase, rid or None)
        self._region_cache: Dict[str, Tuple[bool, Optional[int]]] = {}
        self._mpi_rid: Dict[str, int] = {}
        #: hoisted constants for the hot _mpi_leave path
        self._mpi_spin = cost.mpi_spin_instr_per_sec
        self._mpi_lib_instr = cost.mpi_library_instr_per_call
        #: per-run (rank, Send/Isend action) -> (eager, base transfer, eager extra)
        self._send_cache: Dict[Tuple[int, Any], Tuple[bool, float, float]] = {}
        #: per-run collective action -> (rep, noiseless collective cost)
        self._coll_cost_cache: Dict[Any, Tuple[float, float]] = {}
        self._phase_leave: Dict[str, float] = {}
        self._rank_time: Dict[int, float] = {}

        # Static pinning-derived contention tables.
        self._numa_occupancy = self.pinning.numa_occupancy()
        self._socket_occupancy: Dict[int, int] = {}
        self._ranks_on_numa: Dict[int, set] = {}
        self._ranks_on_socket: Dict[int, set] = {}
        # Observability: metric objects are bound once here; while
        # observability is disabled (the default) these are the shared
        # null singletons whose operations are no-ops, so the hot loop
        # pays one no-op method call and allocates nothing.
        self._c_steps = obs.counter("sim.scheduler_steps")
        self._c_stale = obs.counter("sim.stale_wakeups")
        self._c_matched = obs.counter("sim.messages_matched")
        self._c_coll = obs.counter("sim.collectives_completed")
        self._c_blocks = obs.counter("sim.rank_blocks")
        self._h_msg_bytes = obs.histogram("sim.message_bytes")
        # actions dispatched per scheduler run-slice (SoA queue drain)
        self._h_drain_batch = obs.histogram(
            "sim.drain_batch_size",
            bounds=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
                    512.0, 1024.0),
        )
        self._c_crashes = obs.counter("faults.crashes")
        self._c_restarts = obs.counter("faults.restarts")
        self._c_ckpts = obs.counter("faults.checkpoints")

        rank_sockets: Dict[int, set] = {}
        for (r, th) in self.pinning.locations():
            core = self.pinning.core_of(r, th)
            self._socket_occupancy[core.socket_id] = self._socket_occupancy.get(core.socket_id, 0) + 1
            self._ranks_on_numa.setdefault(core.numa_id, set()).add(r)
            self._ranks_on_socket.setdefault(core.socket_id, set()).add(r)
            rank_sockets.setdefault(r, set()).add(core.socket_id)
        self._rank_spans_sockets = {r: len(s) > 1 for r, s in rank_sockets.items()}

        # Vectorized hot path: SoA scheduler queue + per-site cost caches.
        # Built last -- FastPath binds the measurement's event lists and
        # the contention tables above.
        if self.config.vectorized:
            self._fast = FastPath(self)
            self._equeue = SoAEventQueue(self.pinning.ranks)
            # Direct-append emission for the whole engine (not just the
            # fast-path dispatchers): equivalent to measurement.record()
            # whenever no online sanitizer needs to observe each event.
            self._ev_lists = self._fast._ev_lists
        else:
            self._fast = None
            self._equeue = None
            self._ev_lists = None

    # ------------------------------------------------------------------
    # identifiers and emission
    # ------------------------------------------------------------------
    def loc_id(self, rank: int, thread: int) -> int:
        return self._loc_base[rank] + thread

    def next_omp_id(self) -> int:
        self._next_omp += 1
        return self._next_omp - 1

    def emit(self, loc: int, ev: Ev) -> None:
        """Record an event (no-op in reference runs and during ghost replay)."""
        if not self._live:
            return
        self._n_events += 1
        lists = self._ev_lists
        if lists is not None:
            lists[loc].append(ev)
        elif self.measurement is not None:
            self.measurement.record(loc, ev)

    def emit_master(self, rank: _RankState, ev: Ev) -> None:
        # inlined emit() body: this is the hottest emission entry point
        if not self._live:
            return
        self._n_events += 1
        lists = self._ev_lists
        if lists is not None:
            lists[self._loc_base[rank.rank]].append(ev)
        elif self.measurement is not None:
            self.measurement.record(self._loc_base[rank.rank], ev)

    def count_cost(self, delta: WorkDelta) -> float:
        if self.measurement is None:
            return 0.0
        return self.measurement.count_cost(delta)

    # ------------------------------------------------------------------
    # contention context
    # ------------------------------------------------------------------
    def compute_context(
        self, rank: int, thread: int, kernel: KernelSpec, team_threads: int = 1
    ) -> ComputeContext:
        """Build the contention/cache context for one kernel execution.

        ``team_threads`` is the number of own-rank threads running the same
        phase (1 for serial compute).  Other ranks pinned to the same scope
        contribute contention discounted by their current virtual-time
        spread (the desynchronisation credit, see
        :mod:`repro.machine.memory`).
        """
        core = self.pinning.core_of(rank, thread)
        if kernel.memory_scope == "socket":
            scope_ranks = self._ranks_on_socket.get(core.socket_id, set())
        else:
            scope_ranks = self._ranks_on_numa.get(core.numa_id, set())
        others = [r for r in scope_ranks if r != rank]
        if team_threads > 1:
            # SPMD: assume other ranks run the same parallel phase with the
            # same width, counting only their threads pinned to this scope.
            if kernel.memory_scope == "socket":
                occ = self._socket_occupancy.get(core.socket_id, team_threads)
            else:
                occ = self._numa_occupancy.get(core.numa_id, team_threads)
            own_here = sum(
                1
                for tt in range(self.pinning.threads_of(rank))
                if (self.pinning.core_of(rank, tt).socket_id == core.socket_id
                    if kernel.memory_scope == "socket"
                    else self.pinning.core_of(rank, tt).numa_id == core.numa_id)
            )
            team = own_here
            other_actors = max(0, occ - own_here)
        else:
            team = 1
            other_actors = len(others)  # one active (master) stream per rank
        t_now = self._rank_time.get(rank, 0.0)
        if others and team_threads == 1:
            # Serial phases: cross-rank overlap decays with the current
            # spread of rank progress (drives the MiniFE init behaviour).
            desync = sum(abs(self._rank_time.get(r, 0.0) - t_now) for r in others) / len(others)
        else:
            # Steady-state SPMD parallel loops: ranks re-synchronise at
            # every collective, so treat the overlap as full.  Without
            # this, the desync estimate feeds back into bandwidth shares
            # and fabricates rank skew that the real machine doesn't show.
            desync = 0.0
        return ComputeContext(
            rank=rank,
            thread=thread,
            numa_id=core.numa_id,
            socket_id=core.socket_id,
            team_actors=team,
            other_actors=other_actors,
            desync=desync,
            cache_working_set=self._ws_per_socket,
            cache_extra_footprint=self._footprint,
            overlap_factor=self._overlap_factor,
            team_cross_socket=(team_threads > 1 and self._rank_spans_sockets.get(rank, False)),
        )

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> SimResult:
        """Execute the program to completion and return the results."""
        with obs.span(
            "engine.run",
            program=self.program.name,
            mode=self.measurement.mode if self.measurement is not None else "ref",
        ):
            return self._run()

    def _run(self) -> SimResult:
        for r in self.pinning.ranks:
            ctx = ProgramContext(
                rank=r, n_ranks=self.pinning.n_ranks, n_threads=self.pinning.threads_of(r)
            )
            state = _RankState(r, self.program.make_rank(ctx), self.pinning.threads_of(r))
            self._ranks[r] = state
            self._rank_time[r] = 0.0
            self._coll_seq[r] = 0
            self._push(state)
        # Epoch 0: a crash before the first checkpoint restarts from t=0.
        self._apply_restarts(0)

        n_ranks = len(self._ranks)
        if self._equeue is not None:
            n_done = self._drain_vectorized()
        else:
            n_done = self._drain_legacy()
        if n_done != n_ranks:
            raise self._deadlock_error()

        runtime = max(self._rank_time.values()) if self._rank_time else 0.0
        phases = {}
        for name, t_enter in self._phase_enter.items():
            t_leave = self._phase_leave.get(name)
            if t_leave is not None:
                phases[name] = t_leave - t_enter
        trace = self.measurement.finish(runtime) if self.measurement is not None else None
        obs.counter("sim.events_emitted").add(self._n_events)
        obs.counter("sim.runs").inc()
        if self._fast is not None:
            self._fast.flush_metrics()
        return SimResult(
            runtime=runtime,
            phase_times=phases,
            rank_end_times=[self._rank_time[r] for r in sorted(self._rank_time)],
            n_events=self._n_events,
            trace=trace,
        )

    def _deadlock_error(self) -> RuntimeError:
        """Per stuck rank: the blocked MPI action and its call path."""
        from repro.verify.diagnostics import Diagnostic, format_diagnostics

        stuck = sorted(r for r, s in self._ranks.items() if not s.done)
        diags = []
        for r in stuck:
            s = self._ranks[r]
            site = s.block_site
            if site is None:
                desc, path = "<unknown action>", tuple(s.stack)
            elif len(site) == 4:  # deferred collective site
                region, seq, missing, path = site
                desc = (
                    f"{region} (collective sequence {seq}, "
                    f"waiting for {missing} more rank(s))"
                )
            else:
                desc, path = site
            diags.append(Diagnostic(
                "MPI008", f"blocked on {desc}", rank=r, call_path=path
            ))
        header = (
            f"deadlock: ranks {stuck} blocked at end of simulation "
            f"(unmatched communication in {self.program.name!r})"
        )
        return RuntimeError(format_diagnostics(diags, header=header))

    def _drain_legacy(self) -> int:
        """Legacy oracle scheduler: heapq of (t, seq, rank, epoch) tuples."""
        n_done = 0
        c_steps = self._c_steps
        c_stale = self._c_stale
        while self._heap:
            t, _seq, r, epoch = heapq.heappop(self._heap)
            state = self._ranks[r]
            if state.done or state.blocked or epoch != state.epoch:
                c_stale.inc()
                continue
            c_steps.inc()
            if self._step(state):
                n_done += 1
        return n_done

    def _drain_vectorized(self) -> int:
        """SoA scheduler with run-slicing.

        After each step, if the rank's new time is still *strictly* earlier
        than every queued wake-up it keeps running without a queue round-
        trip -- exactly the entry the legacy heap would pop next, because
        a fresh push carries the largest sequence number and loses every
        ``(t, seq)`` tie to an already-queued entry.
        """
        if self._crashes:
            # Fault injection needs the per-step crash check; take the
            # uninlined path (its sites bypass the shared cache anyway).
            return self._drain_vectorized_careful()
        q = self._equeue
        ranks = self._ranks
        pop = q.pop
        peek = q.peek_t
        push_pop = q.push_pop
        dispatch = self._dispatch
        fast = self._fast
        pfor_fn = fast.parallel_for if fast is not None else None
        compute_fn = fast.do_compute if fast is not None else None
        burst_fn = fast.do_burst if fast is not None else None
        enter_fn = self._do_enter
        leave_fn = self._do_leave
        rt = self._rank_time
        _PFOR, _COMP, _BURST = A.ParallelFor, A.Compute, A.CallBurst
        _ENTER, _LEAVE = A.Enter, A.Leave
        observe_batch = self._h_drain_batch.observe
        n_done = 0
        n_steps = 0
        n_stale = 0
        nxt = pop()
        while nxt is not None:
            _t, r, epoch = nxt
            state = ranks[r]
            if state.done or state.blocked or epoch != state.epoch:
                n_stale += 1
                nxt = pop()
                continue
            gen_send = state.gen.send
            slice_start = n_steps
            while True:
                # inlined _step_core (sans crash check: none are armed)
                n_steps += 1
                try:
                    action = gen_send(state.pending_result)
                except StopIteration:
                    state.done = True
                    rt[r] = state.t
                    n_done += 1
                    nxt = pop()
                    break
                state.pending_result = None
                state.n_actions += 1
                epoch_before = state.epoch
                cls = type(action)
                if pfor_fn is not None and cls is _PFOR:
                    pfor_fn(state, action)
                elif compute_fn is not None and cls is _COMP:
                    compute_fn(state, action)
                elif burst_fn is not None and cls is _BURST:
                    burst_fn(state, action)
                elif cls is _ENTER:
                    enter_fn(state, action.region)
                elif cls is _LEAVE:
                    leave_fn(state, action.region)
                else:
                    dispatch(state, action)
                t = state.t
                if t > rt[r]:
                    rt[r] = t
                if not state.blocked and not state.done and state.epoch == epoch_before:
                    if t < peek():
                        continue  # still the earliest: slice on
                    nxt = push_pop(r, t, state.epoch)
                    break
                nxt = pop()
                break
            observe_batch(n_steps - slice_start)
        self._c_steps.inc(n_steps)
        self._c_stale.inc(n_stale)
        return n_done

    def _drain_vectorized_careful(self) -> int:
        """SoA drain with the full per-step path (crash points armed)."""
        q = self._equeue
        ranks = self._ranks
        c_steps = self._c_steps
        c_stale = self._c_stale
        step = self._step_core
        pop = q.pop
        peek = q.peek_t
        push = self._push
        observe_batch = self._h_drain_batch.observe
        n_done = 0
        while True:
            nxt = pop()
            if nxt is None:
                break
            _t, r, epoch = nxt
            state = ranks[r]
            if state.done or state.blocked or epoch != state.epoch:
                c_stale.inc()
                continue
            n_slice = 0
            while True:
                c_steps.inc()
                n_slice += 1
                res = step(state)
                if res is _RUNNABLE:
                    if state.t < peek():
                        continue  # still the earliest: slice on
                    push(state)
                    break
                if res is _DONE:
                    n_done += 1
                break
            observe_batch(n_slice)
        return n_done

    def _push(self, state: _RankState) -> None:
        eq = self._equeue
        if eq is not None:
            eq.push(state.rank, state.t, state.epoch)
            return
        self._seq += 1
        heapq.heappush(self._heap, (state.t, self._seq, state.rank, state.epoch))

    def _resume(self, state: _RankState, t: float, result: Any = None) -> None:
        state.t = t
        state.blocked = False
        state.block_site = None
        state.epoch += 1
        state.pending_result = result
        self._rank_time[state.rank] = t
        self._push(state)

    def _step(self, state: _RankState) -> bool:
        """Advance one action; returns True when the rank finished."""
        res = self._step_core(state)
        if res is _DONE:
            return True
        if res is _RUNNABLE:
            self._push(state)
        return False

    def _step_core(self, state: _RankState):
        """Advance one action; returns a scheduler-outcome sentinel.

        ``_RUNNABLE`` means the rank may act again and was *not* re-queued
        (the caller decides: legacy pushes, the vectorized drain may slice).
        ``_PARKED`` covers both blocking and a resume during the rank's own
        dispatch (e.g. last rank into a collective) -- in the latter case
        ``_resume`` already re-queued it under a new epoch.
        """
        if self._crashes:
            cp = self._crashes.get(state.rank)
            if cp is not None and (
                state.n_actions >= cp.at
                if cp.trigger == "progress"
                else state.t >= cp.at
            ):
                # Fail-stop: consume the crash point (it fires once across
                # all recovery attempts) and abort the whole run.
                del self._crashes[state.rank]
                self._c_crashes.inc()
                t_crash = max(self._rank_time.values()) if self._rank_time else state.t
                raise SimCrashError(cp, self._ckpt_count, t_crash)
        try:
            action = state.gen.send(state.pending_result)
        except StopIteration:
            state.done = True
            self._rank_time[state.rank] = state.t
            return _DONE
        state.pending_result = None
        state.n_actions += 1
        epoch_before = state.epoch
        self._dispatch(state, action)
        rt = self._rank_time
        if state.t > rt[state.rank]:
            rt[state.rank] = state.t
        if not state.blocked and not state.done and state.epoch == epoch_before:
            return _RUNNABLE
        return _PARKED

    # ------------------------------------------------------------------
    # action dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, state: _RankState, action) -> None:
        cls = type(action)
        fast = self._fast
        if fast is not None:
            # Cached-statics fast path for the three compute-shaped
            # actions (bit-identical to the legacy branches below).
            if cls is A.ParallelFor:
                fast.parallel_for(state, action)
                return
            if cls is A.Compute:
                fast.do_compute(state, action)
                return
            if cls is A.CallBurst:
                fast.do_burst(state, action)
                return
        if cls is A.Compute:
            self._do_compute(state, action)
        elif cls is A.ParallelFor:
            execute_parallel_for(self, state, action)
        elif cls is A.Enter:
            self._do_enter(state, action.region)
        elif cls is A.Leave:
            self._do_leave(state, action.region)
        elif cls is A.CallBurst:
            self._do_burst(state, action)
        elif cls is A.Send:
            self._do_send(state, action, blocking=True)
        elif cls is A.Recv:
            self._do_recv(state, action)
        elif cls is A.Isend:
            self._do_send(state, action, blocking=False)
        elif cls is A.Irecv:
            self._do_irecv(state, action)
        elif cls is A.Wait:
            self._do_waitall(state, (action.request,), "MPI_Wait")
        elif cls is A.Waitall:
            self._do_waitall(state, action.requests, "MPI_Waitall")
        elif cls in A.COLLECTIVE_INFO:
            self._do_collective(state, action)
        else:
            raise TypeError(f"unknown action {action!r}")

    # -- call-path structure -------------------------------------------
    def _filtered(self, region: str) -> bool:
        return self.measurement is not None and self.measurement.filtered(region)

    def _region_info(self, region: str) -> Tuple[bool, Optional[int]]:
        """Per-run cache of (is_phase, rid-or-None) for Enter/Leave.

        ``rid`` is ``None`` when the region is filtered or there is no
        measurement; it is interned lazily so region-id assignment keeps
        the legacy first-ENTER order.  The cache is per-engine (one run),
        so rebuilding filter rules *between* runs behaves as before;
        mutating them mid-run is not supported.
        """
        info = self._region_cache.get(region)
        if info is None:
            rid: Optional[int] = None
            if self.measurement is not None and not self._filtered(region):
                rid = self.regions.intern(region)
            info = (region in self.program.phases, rid)
            self._region_cache[region] = info
        return info

    def _do_enter(self, state: _RankState, region: str) -> None:
        state.stack.append(region)
        info = self._region_cache.get(region)
        if info is None:
            info = self._region_info(region)
        is_phase, rid = info
        if is_phase and region not in self._phase_enter:
            self._phase_enter[region] = state.t
        if rid is None:
            return
        # inlined emit_master (the delta flush runs even in ghost replay)
        d = state.pending_delta
        state.pending_delta = EMPTY_DELTA
        if self._live:
            self._n_events += 1
            lists = self._ev_lists
            if lists is not None:
                lists[self._loc_base[state.rank]].append(Ev(ENTER, rid, state.t, d))
            else:
                self.measurement.record(
                    self._loc_base[state.rank], Ev(ENTER, rid, state.t, d))
        state.t += self.ev_cost

    def _do_leave(self, state: _RankState, region: Optional[str]) -> None:
        if not state.stack:
            raise RuntimeError(f"rank {state.rank}: Leave with empty region stack")
        top = state.stack.pop()
        if region is not None and region != top:
            raise RuntimeError(
                f"rank {state.rank}: Leave({region!r}) does not match Enter({top!r})"
            )
        info = self._region_cache.get(top)
        if info is None:
            info = self._region_info(top)
        is_phase, rid = info
        if is_phase:
            prev = self._phase_leave.get(top, -math.inf)
            self._phase_leave[top] = max(prev, state.t)
        if rid is None:
            return
        d = state.pending_delta
        state.pending_delta = EMPTY_DELTA
        if self._live:
            self._n_events += 1
            lists = self._ev_lists
            if lists is not None:
                lists[self._loc_base[state.rank]].append(Ev(LEAVE, rid, state.t, d))
            else:
                self.measurement.record(
                    self._loc_base[state.rank], Ev(LEAVE, rid, state.t, d))
        state.t += self.ev_cost

    # -- computation ------------------------------------------------------
    def _do_compute(self, state: _RankState, action: A.Compute) -> None:
        delta = action.kernel.scaled_counts(action.units).without_omp_iters()
        extra = self.count_cost(delta)
        ctx = self.compute_context(state.rank, 0, action.kernel)
        dur = self.cost.kernel_time(action.kernel, action.units, ctx, extra_flop_time=extra)
        state.t += dur * self.compute_scale(state.rank, 0)
        state.add_delta(delta)

    def _do_burst(self, state: _RankState, action: A.CallBurst) -> None:
        delta = action.kernel.scaled_counts(action.units).without_omp_iters()
        extra = self.count_cost(delta)
        ctx = self.compute_context(state.rank, 0, action.kernel)
        dur = self.cost.kernel_time(action.kernel, action.units, ctx, extra_flop_time=extra)
        dur *= self.compute_scale(state.rank, 0)
        t0 = state.t
        if self.measurement is not None and not self._filtered(action.region):
            per_call = self.measurement.event_cost()
            dur += 2.0 * action.calls * per_call
            rid = self.regions.intern(action.region)
            full = WorkDelta(
                omp_iters=0.0,
                bb=delta.bb,
                stmt=delta.stmt,
                instr=delta.instr,
                burst_calls=action.calls,
            ) + state.flush_delta()
            state.t = t0 + dur
            self.emit(
                self.loc_id(state.rank, 0),
                Ev(BURST, rid, state.t, full, t_enter=t0),
            )
        else:
            # Filtered: the work still runs (and still pays counting
            # instrumentation) but merges into the enclosing region.
            state.t = t0 + dur
            state.add_delta(delta)

    # -- MPI point-to-point ------------------------------------------------
    def _channel(self, src: int, dst: int, tag: int) -> Dict[str, deque]:
        key = (src, dst, tag)
        ch = self._channels.get(key)
        if ch is None:
            ch = {"sends": deque(), "recvs": deque()}
            self._channels[key] = ch
        return ch

    def _post_seq(self, dst: int) -> int:
        seq = self._recv_seq.get(dst, 0)
        self._recv_seq[dst] = seq + 1
        return seq

    def _pop_recv_for_send(self, src: int, dst: int, tag: int):
        """Earliest-posted parked receive a new send (src->dst, tag) matches.

        Compares the head of the named ``(src, dst, tag)`` receive queue
        with the head of the wildcard ``(dst, tag)`` queue by posting
        order, mirroring MPI's posted-receive-queue semantics.
        """
        ch = self._channels.get((src, dst, tag))
        named_q = ch["recvs"] if ch is not None else None
        any_q = self._any_recvs.get((dst, tag))
        named = named_q[0] if named_q else None
        wild = any_q[0] if any_q else None
        if named is None and wild is None:
            return None
        if wild is None or (named is not None
                            and named["post_seq"] < wild["post_seq"]):
            return named_q.popleft()
        return any_q.popleft()

    def _pop_send_for_any(self, dst: int, tag: int):
        """Queued send a new wildcard receive at ``dst`` matches, if any.

        Among the head sends of every ``(*, dst, tag)`` channel, picks the
        one *physically available* first (eager arrival / rendezvous post
        time, ties broken by source rank).  This is the deliberately
        noise-dependent choice that makes wildcard receives order-racy:
        a different noise realization can reorder arrivals and flip the
        match -- exactly what the determinism certificate flags.
        """
        best_key = None
        best_rank: Optional[Tuple[float, int]] = None
        for (src, d, tg), ch in self._channels.items():
            if d != dst or tg != tag or not ch["sends"]:
                continue
            head = ch["sends"][0]
            avail = head["arrival"] if head["eager"] else head["send_t"]
            cand = (avail, src)
            if best_rank is None or cand < best_rank:
                best_rank = cand
                best_key = (src, d, tg)
        if best_key is None:
            return None
        return self._channels[best_key]["sends"].popleft()

    def _mpi_enter(self, state: _RankState, region: str) -> int:
        """Emit the ENTER of an MPI call; returns the region id."""
        rid = self._mpi_rid.get(region)
        if rid is None:
            rid = self.regions.intern(region, Paradigm.MPI)
            self._mpi_rid[region] = rid
        if self.measurement is not None:
            d = state.pending_delta
            state.pending_delta = EMPTY_DELTA
            if self._live:
                self._n_events += 1
                lists = self._ev_lists
                if lists is not None:
                    lists[self._loc_base[state.rank]].append(Ev(ENTER, rid, state.t, d))
                else:
                    self.measurement.record(
                        self._loc_base[state.rank], Ev(ENTER, rid, state.t, d))
            state.t += self.ev_cost
        return rid

    def _mpi_leave(self, state: _RankState, rid: int, t_end: float, t_begin: float) -> None:
        """Emit the LEAVE of an MPI call with spin-wait instructions."""
        state.t = t_end
        if self.measurement is not None:
            if self._live:
                # == cost.mpi_wait_instructions(max(0, dt)) + library const
                dt = t_end - t_begin
                if dt < 0.0:
                    dt = 0.0
                instr = self._mpi_spin * dt + self._mpi_lib_instr
                self._n_events += 1
                lists = self._ev_lists
                if lists is not None:
                    lists[self._loc_base[state.rank]].append(
                        Ev(LEAVE, rid, t_end, WorkDelta(instr=instr)))
                else:
                    self.measurement.record(
                        self._loc_base[state.rank],
                        Ev(LEAVE, rid, t_end, WorkDelta(instr=instr)))
            state.t = t_end + self.ev_cost
        self._rank_time[state.rank] = state.t

    def _transfer_time(self, src: int, dst: int, nbytes: float, match_id: int) -> float:
        same_node = self.pinning.same_node(src, dst)
        t = self.network.transfer_time(nbytes, same_node)
        if self._faults is not None:
            t *= self._faults.link.factor(src, dst)
        if self.cost.noise is not None:
            t *= self.cost.noise.network.factor(("p2p", match_id))
        return t

    def compute_scale(self, rank: int, thread: int) -> float:
        """Compute-time multiplier from fault injection (straggler cores)."""
        if self._faults is None:
            return 1.0
        return self._faults.straggler.factor(rank, thread)

    def _do_send(self, state: _RankState, action, blocking: bool) -> None:
        region = "MPI_Send" if blocking else "MPI_Isend"
        rid = self._mpi_enter(state, region)
        t0 = state.t
        match_id = self._next_match
        self._next_match += 1
        nbytes = action.nbytes
        site_key = (state.rank, action)
        site = self._send_cache.get(site_key)
        if site is None:
            # (sums stay unfolded at use sites: float adds must keep the
            # legacy association to remain bit-identical)
            site = (
                self.network.is_eager(nbytes),
                self.network.transfer_time(
                    nbytes, self.pinning.same_node(state.rank, action.dest)
                ),
                nbytes / self.config.eager_copy_bandwidth,
            )
            self._send_cache[site_key] = site
        eager, base_transfer, eager_copy_t = site
        if self.measurement is not None:
            # aux: (match id, rendezvous flag) -- the analyzer needs the
            # protocol to decide whether a late receiver is possible.
            self.emit_master(
                state, Ev(MPI_SEND, rid, state.t, EMPTY_DELTA, aux=(match_id, 0 if eager else 1))
            )
            state.t += self.ev_cost
        ch = self._channel(state.rank, action.dest, action.tag)
        entry = {
            "eager": eager,
            "match_id": match_id,
            "send_t": t0,
            "nbytes": nbytes,
            "arrival": None,
            "sender": None,  # set only when a blocking rendezvous send parks
            "request": None,
            "src": state.rank,
            "dst": action.dest,
            "tag": action.tag,
            "rid": rid,
        }
        req = None
        if not blocking:
            req = state.new_request("send")
            req.match_id = match_id
            req.send_t = t0
            entry["request"] = req

        if eager:
            transfer = base_transfer
            if self._faults is not None:
                transfer *= self._faults.link.factor(state.rank, action.dest)
            if self.cost.noise is not None:
                transfer *= self.cost.noise.network.factor(("p2p", match_id))
            entry["arrival"] = t0 + transfer
            local_done = (
                state.t + self.config.mpi_call_overhead + self._mpi_sync_cost
                + eager_copy_t
            )
            if req is not None:
                req.complete_t = local_done
            recv_entry = self._pop_recv_for_send(state.rank, action.dest, action.tag)
            if recv_entry is not None:
                self._match(entry, recv_entry)
            else:
                ch["sends"].append(entry)
            self._mpi_leave(state, rid, local_done, t0)
            if not blocking:
                state.pending_result = req.rid
            return

        # Rendezvous.
        recv_entry = self._pop_recv_for_send(state.rank, action.dest, action.tag)
        if recv_entry is not None:
            done = self._match(entry, recv_entry)
            if blocking:
                self._mpi_leave(state, rid, done, t0)
            else:
                req.complete_t = done
                self._mpi_leave(state, rid, state.t + self.config.mpi_call_overhead + self._mpi_sync_cost, t0)
                state.pending_result = req.rid
            return

        ch["sends"].append(entry)
        if blocking:
            entry["sender"] = state
            entry["pending_leave"] = (rid, t0)
            self._c_blocks.inc()
            state.blocked = True
            state.block_site = (
                f"Send(dest={action.dest}, tag={action.tag}, "
                f"nbytes={nbytes:g}) [rendezvous, no matching recv]",
                tuple(state.stack),
            )
        else:
            self._mpi_leave(state, rid, state.t + self.config.mpi_call_overhead + self._mpi_sync_cost, t0)
            state.pending_result = req.rid

    def _do_recv(self, state: _RankState, action: A.Recv) -> None:
        wildcard = action.source == A.ANY_SOURCE
        rid = self._mpi_enter(state, "MPI_Recv_any" if wildcard else "MPI_Recv")
        t0 = state.t
        entry = {
            "recv_t": t0,
            "receiver": state,
            "request": None,
            "rid": rid,
            "blocking": True,
            "parked": False,
            "post_seq": self._post_seq(state.rank),
        }
        if wildcard:
            send_entry = self._pop_send_for_any(state.rank, action.tag)
        else:
            ch = self._channel(action.source, state.rank, action.tag)
            send_entry = ch["sends"].popleft() if ch["sends"] else None
        if send_entry is not None:
            self._match(send_entry, entry)
        else:
            entry["parked"] = True
            if wildcard:
                self._any_recvs.setdefault(
                    (state.rank, action.tag), deque()
                ).append(entry)
            else:
                ch["recvs"].append(entry)
            self._c_blocks.inc()
            state.blocked = True
            src = "ANY_SOURCE" if wildcard else str(action.source)
            state.block_site = (
                f"Recv(source={src}, tag={action.tag}) "
                "[no matching send]",
                tuple(state.stack),
            )

    def _do_irecv(self, state: _RankState, action: A.Irecv) -> None:
        wildcard = action.source == A.ANY_SOURCE
        rid = self._mpi_enter(state, "MPI_Irecv_any" if wildcard else "MPI_Irecv")
        t0 = state.t
        req = state.new_request("recv")
        if wildcard:
            req.any_rid = rid
        entry = {
            "recv_t": t0,
            "receiver": state,
            "request": req,
            "rid": rid,
            "blocking": False,
            "parked": False,
            "post_seq": self._post_seq(state.rank),
        }
        if wildcard:
            send_entry = self._pop_send_for_any(state.rank, action.tag)
        else:
            ch = self._channel(action.source, state.rank, action.tag)
            send_entry = ch["sends"].popleft() if ch["sends"] else None
        if send_entry is not None:
            self._match(send_entry, entry)
        else:
            entry["parked"] = True
            if wildcard:
                self._any_recvs.setdefault(
                    (state.rank, action.tag), deque()
                ).append(entry)
            else:
                ch["recvs"].append(entry)
        self._mpi_leave(state, rid, state.t + self.config.mpi_call_overhead + self._mpi_sync_cost, t0)
        state.pending_result = req.rid

    def _match(self, send_entry: dict, recv_entry: dict) -> float:
        """Resolve one matched (send, recv) pair; returns completion time."""
        self._c_matched.inc()
        self._h_msg_bytes.observe(send_entry["nbytes"])
        receiver: _RankState = recv_entry["receiver"]
        recv_req: Optional[_Request] = recv_entry["request"]
        r_t = recv_entry["recv_t"]
        fault_rid = -1
        fault_extra = 0.0
        if self._faults is not None:
            # Faults draw on the k-th matched message of the channel -- a
            # program-order coordinate, so the same physical message is
            # faulted under every noise realization and every ghost replay.
            chan = (send_entry["src"], send_entry["dst"], send_entry["tag"])
            k = self._chan_occurrence.get(chan, 0)
            self._chan_occurrence[chan] = k + 1
            if self._faults.loss.lost(*chan, k):
                fault_extra = self._faults.config.message_loss_timeout
                fault_rid = self._rid_fault_loss
            elif self._faults.duplication.duplicated(*chan, k):
                fault_extra = self._faults.config.message_duplication_overhead
                fault_rid = self._rid_fault_dup
        if send_entry["eager"]:
            done = max(r_t, send_entry["arrival"]) + self.config.mpi_call_overhead + fault_extra
        else:
            start = max(r_t, send_entry["send_t"])
            done = (
                start
                + self._transfer_time(
                    send_entry["src"], send_entry["dst"], send_entry["nbytes"], send_entry["match_id"]
                )
                + self.config.mpi_call_overhead
                + fault_extra
            )
            # Unblock a blocked rendezvous sender / complete its request.
            sender: Optional[_RankState] = send_entry["sender"]
            if sender is not None:
                rid_s, t0_s = send_entry["pending_leave"]
                self._mpi_leave(sender, rid_s, done, t0_s)
                self._resume(sender, sender.t)
            send_req: Optional[_Request] = send_entry["request"]
            if send_req is not None:
                send_req.complete_t = done
                self._check_waiter(send_req)

        if recv_entry["blocking"]:
            # Emit the receive record + LEAVE; resume the receiver only if
            # it was parked (it may be the currently executing rank).  A
            # blocking receive yields the matched source rank back to the
            # program (the ``status.MPI_SOURCE`` analog) -- the only way a
            # wildcard receive's outcome can steer control flow.
            if self.measurement is not None:
                if fault_rid >= 0:
                    self.emit_master(
                        receiver,
                        Ev(FAULT, fault_rid, done, EMPTY_DELTA, aux=send_entry["match_id"]),
                    )
                self.emit_master(
                    receiver,
                    Ev(MPI_RECV, recv_entry["rid"], done, EMPTY_DELTA, aux=send_entry["match_id"]),
                )
            self._mpi_leave(receiver, recv_entry["rid"], done + self.ev_cost, r_t)
            if recv_entry["parked"]:
                self._resume(receiver, receiver.t, result=send_entry["src"])
            else:
                receiver.pending_result = send_entry["src"]
        else:
            recv_req.complete_t = done
            recv_req.match_id = send_entry["match_id"]
            recv_req.send_t = send_entry["send_t"]
            recv_req.fault_rid = fault_rid
            self._check_waiter(recv_req)
        return done

    # -- waits --------------------------------------------------------------
    def _do_waitall(self, state: _RankState, request_ids, region: str) -> None:
        rid = self._mpi_enter(state, region)
        state.wait_t0 = state.t
        state.wait_region = rid
        state.wait_requests = list(request_ids)
        self._try_finish_wait(state)

    def _try_finish_wait(self, state: _RankState) -> None:
        reqs = [state.requests[i] for i in state.wait_requests]
        if any(r.complete_t is None for r in reqs):
            pending = []
            for r in reqs:
                if r.complete_t is None:
                    r.waiter = state
                    pending.append(f"{r.kind} request #{r.rid}")
            self._c_blocks.inc()
            state.blocked = True
            state.block_site = (
                f"{self.regions.name(state.wait_region)} on "
                f"{len(pending)} incomplete request(s): {', '.join(pending)}",
                tuple(state.stack),
            )
            return
        t0 = state.wait_t0
        end = max([t0] + [r.complete_t for r in reqs]) + self.config.mpi_call_overhead
        if self.measurement is not None:
            # Receive-complete records are written in *request posting
            # order* (as MPI tools do), so the event sequence -- and with it
            # every logical trace -- is independent of message timing.
            t_rec = t0
            for r in reqs:
                if r.kind != "recv":
                    continue
                t_rec = max(t_rec, r.complete_t)
                if r.fault_rid >= 0:
                    self.emit_master(
                        state, Ev(FAULT, r.fault_rid, t_rec, EMPTY_DELTA, aux=r.match_id)
                    )
                rec_rid = r.any_rid if r.any_rid >= 0 else state.wait_region
                self.emit_master(
                    state, Ev(MPI_RECV, rec_rid, t_rec, EMPTY_DELTA, aux=r.match_id)
                )
        for i in state.wait_requests:
            del state.requests[i]
        was_blocked = state.blocked
        rid = state.wait_region
        state.wait_requests = []
        self._mpi_leave(state, rid, end, t0)
        if was_blocked:
            self._resume(state, state.t)

    def _check_waiter(self, req: _Request) -> None:
        waiter = req.waiter
        if waiter is None:
            return
        req.waiter = None
        if waiter.blocked and all(
            waiter.requests[i].complete_t is not None for i in waiter.wait_requests
        ):
            self._try_finish_wait(waiter)

    # -- collectives ----------------------------------------------------------
    def _do_collective(self, state: _RankState, action) -> None:
        op, region = A.COLLECTIVE_INFO[type(action)]
        rid = self._mpi_enter(state, region)
        seq = self._coll_seq[state.rank]
        self._coll_seq[state.rank] = seq + 1
        inst = self._coll.get(seq)
        if inst is None:
            inst = {"op": op, "enters": {}, "action": action, "rid": {}}
            self._coll[seq] = inst
        if inst["op"] != op:
            raise RuntimeError(
                f"collective mismatch at sequence {seq}: rank {state.rank} called {op}, "
                f"others called {inst['op']}"
            )
        inst["enters"][state.rank] = state.t
        inst["rid"][state.rank] = rid
        self._c_blocks.inc()
        state.blocked = True
        missing = self.pinning.n_ranks - len(inst["enters"])
        # deferred-format site: rendered only by the deadlock reporter
        state.block_site = (region, seq, missing, tuple(state.stack))
        if len(inst["enters"]) == self.pinning.n_ranks:
            self._complete_collective(seq, inst)

    def _coll_nbytes(self, action) -> float:
        if type(action) is A.Checkpoint:
            return 0.0  # barrier cost only; the checkpoint write is priced separately
        for attr in ("nbytes", "nbytes_per_pair", "nbytes_per_rank"):
            if hasattr(action, attr):
                return getattr(action, attr)
        return 0.0

    def _complete_collective(self, seq: int, inst: dict) -> None:
        self._c_coll.inc()
        ranks = self.pinning.ranks
        action = inst["action"]
        cached = self._coll_cost_cache.get(action)
        if cached is None:
            rep = max(1.0, float(getattr(action, "represents", 1.0)))
            base = self.collectives.cost(
                inst["op"], self.pinning, ranks, self._coll_nbytes(action)
            ) * rep
            if type(action) is A.Checkpoint:
                base += (action.nbytes / self.config.checkpoint_write_bandwidth) * rep
            cached = (rep, base)
            self._coll_cost_cache[action] = cached
        rep, cost = cached
        if self.cost.noise is not None:
            cost *= self.cost.noise.network.factor(("coll", seq))
        completion = max(inst["enters"].values()) + cost
        coll_id = self._next_coll
        self._next_coll += 1
        n = len(ranks)
        extra_bc = (rep - 1.0) / 2.0  # lt_1: each event stands for rep calls
        instrumented = self.measurement is not None
        t_exit = completion + (self.config.mpi_call_overhead + self._mpi_sync_cost) * rep
        if instrumented:
            spin = self._mpi_spin
            lib_instr = self._mpi_lib_instr * rep
            aux = (coll_id, n)
            evc_rep = self.ev_cost * rep
            rids = inst["rid"]
            enters = inst["enters"]
            resume = self._resume
            states = self._ranks
            for r in ranks:
                st = states[r]
                rid = rids[r]
                # == cost.mpi_wait_instructions(max(0, wait)) + lib * rep
                instr = spin * max(0.0, completion - enters[r]) + lib_instr
                self.emit_master(
                    st,
                    Ev(COLL_END, rid, completion,
                       WorkDelta(instr=instr, burst_calls=extra_bc), aux=aux),
                )
                st.t = t_exit
                self.emit_master(st, Ev(LEAVE, rid, t_exit, WorkDelta(burst_calls=extra_bc)))
                st.t += evc_rep
                resume(st, st.t)
        else:
            for r in ranks:
                st = self._ranks[r]
                st.t = t_exit
                self._resume(st, st.t)
        del self._coll[seq]
        if type(action) is A.Checkpoint:
            self._ckpt_count += 1
            if self._live:
                self._c_ckpts.inc()
                t_after = max(self._ranks[r].t for r in ranks)
                mark = self.measurement.mark() if self.measurement is not None else None
                self.checkpoint_marks[self._ckpt_count] = (t_after, mark)
            self._apply_restarts(self._ckpt_count)

    def _apply_restarts(self, epoch: int) -> None:
        """Apply the restart plan's jump for ``epoch``, if it has one.

        Each jump moves every rank to the recorded resume time and clears
        in-flight work deltas, replicating what the previous attempt did
        at its own go-live.  After the plan's *last* jump the engine goes
        live: emission resumes and one ``RESTART`` event per rank marks
        the discontinuity in the trace.
        """
        plan = self._restart
        if plan is None or self._restart_idx >= len(plan.restarts):
            return
        next_epoch, t_resume = plan.restarts[self._restart_idx]
        if epoch != next_epoch:
            return
        self._restart_idx += 1
        # Ranks resume one event-write past the RESTART marker: strictly
        # later than t_resume, so in merged order the whole restart group
        # completes before any post-restart event (keeps logical clocks
        # monotone across the discontinuity).
        for st in self._ranks.values():
            if st.done:
                continue
            st.pending_delta = EMPTY_DELTA
            self._resume(st, t_resume + self.ev_cost)
        if self._restart_idx >= len(plan.restarts):
            self._live = True
            self._c_restarts.inc()
            if self.measurement is not None:
                aux = (plan.restart_id, self.pinning.n_ranks)
                for r in self.pinning.ranks:
                    self.emit(
                        self.loc_id(r, 0),
                        Ev(RESTART, self._rid_restart, t_resume, EMPTY_DELTA, aux=aux),
                    )
