"""Structure-of-arrays scheduler queue for the vectorized engine.

The legacy engine schedules ranks through a ``heapq`` of
``(t, seq, rank, epoch)`` tuples: one tuple allocation per push and
stale entries (superseded by a later resume) skipped at pop time.  The
vectorized engine replaces the heap with one *lane* per rank, backed by
parallel arrays holding the wake time, the push sequence number, the
rank epoch and an active flag.

A rank has at most one live heap entry at any time (``_push`` happens
only from ``_step``/``_resume``, and a resume bumps the epoch, turning
any older entry stale), so a lane per rank is a lossless representation:
pushing a rank that is already queued overwrites its lane, which is
exactly the legacy semantics of the older entry going stale and being
skipped.  Pops select the active lane with the smallest ``(t, seq)``
pair -- identical to the heap's tuple order, because ``seq`` is unique
and strictly increasing, so rank/epoch never participate in the
comparison.

Small jobs keep the lanes in plain Python lists (a handful of ranks is
faster to walk in the interpreter, and scalar reads from numpy arrays
pay ~100ns of boxing each); from ``VECTOR_MIN_LANES`` ranks upward the
lanes live in numpy arrays and pops/peeks use masked reductions, so
wide jobs pay O(ranks) at C speed instead of interpreter speed.  The
current minimum is cached and only recomputed after a push/pop
invalidates it, which makes the run-slicing peek in the engine's inner
loop O(1).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = ["SoAEventQueue", "VECTOR_MIN_LANES"]

#: lane count at which the backing store switches to numpy + masked
#: reductions (below it: plain Python lists + interpreter scans)
VECTOR_MIN_LANES = 32

_INF = float("inf")


class SoAEventQueue:
    """One scheduler lane per rank, stored as parallel arrays."""

    __slots__ = (
        "_t", "_seq", "_epoch", "_active", "_lane", "_rank_of",
        "_n_active", "_next_seq", "_min_t", "_vectorized",
    )

    def __init__(self, ranks: Sequence[int]):
        n = len(ranks)
        self._vectorized = n >= VECTOR_MIN_LANES
        if self._vectorized:
            self._t = np.full(n, _INF, dtype=np.float64)
            self._seq = np.zeros(n, dtype=np.int64)
            self._epoch = np.zeros(n, dtype=np.int64)
            self._active = np.zeros(n, dtype=bool)
        else:
            self._t = [_INF] * n
            self._seq = [0] * n
            self._epoch = [0] * n
            self._active = [False] * n
        self._lane: Dict[int, int] = {r: i for i, r in enumerate(ranks)}
        self._rank_of = list(ranks)
        self._n_active = 0
        self._next_seq = 0
        #: cached (t, seq, lane) of the current minimum; None = stale
        self._min_t: Optional[Tuple[float, int, int]] = None

    def __len__(self) -> int:
        return self._n_active

    def __bool__(self) -> bool:
        return self._n_active > 0

    def push(self, rank: int, t: float, epoch: int) -> None:
        """Queue (or re-queue) ``rank`` to wake at ``t``.

        Overwriting an occupied lane is the SoA equivalent of the legacy
        heap's stale-entry skip: the older entry could never have acted
        (its epoch no longer matches the rank's).
        """
        lane = self._lane[rank]
        self._next_seq += 1
        if not self._active[lane]:
            self._active[lane] = True
            self._n_active += 1
        self._t[lane] = t
        self._seq[lane] = self._next_seq
        self._epoch[lane] = epoch
        cached = self._min_t
        if cached is not None:
            if t < cached[0] or cached[2] == lane:
                self._min_t = None  # new entry may now be (or beat) the min
        # equal-t pushes never beat the cached min: their seq is larger

    def _find_min(self) -> Optional[Tuple[float, int, int]]:
        if self._n_active == 0:
            return None
        if self._vectorized:
            t = np.where(self._active, self._t, _INF)
            m = t.min()
            cands = np.flatnonzero(t == m)
            if len(cands) == 1:
                lane = int(cands[0])
            else:
                lane = int(cands[np.argmin(self._seq[cands])])
            return (float(m), int(self._seq[lane]), lane)
        best_t = _INF
        best_seq = 0
        best_lane = -1
        t_arr = self._t
        seq_arr = self._seq
        active = self._active
        for lane in range(len(t_arr)):
            if not active[lane]:
                continue
            lt = t_arr[lane]
            if lt < best_t or (lt == best_t and seq_arr[lane] < best_seq):
                best_t = lt
                best_seq = seq_arr[lane]
                best_lane = lane
        if best_lane < 0:
            return None
        return (best_t, best_seq, best_lane)

    def peek_t(self) -> float:
        """Wake time of the next pop (``inf`` when empty); O(1) when warm."""
        cached = self._min_t
        if cached is None:
            if self._n_active == 0:
                return _INF
            if self._vectorized:
                cached = self._find_min()
            else:
                # inlined scalar scan (the engine's hottest queue call)
                best_t = _INF
                best_seq = 0
                best_lane = -1
                active = self._active
                seq_arr = self._seq
                for lane, lt in enumerate(self._t):
                    if active[lane] and (
                        lt < best_t or (lt == best_t and seq_arr[lane] < best_seq)
                    ):
                        best_t = lt
                        best_seq = seq_arr[lane]
                        best_lane = lane
                cached = (best_t, best_seq, best_lane)
            self._min_t = cached
        return cached[0] if cached is not None else _INF

    def pop(self) -> Optional[Tuple[float, int, int]]:
        """Remove and return ``(t, rank, epoch)`` of the earliest lane."""
        cached = self._min_t
        if cached is None:
            if self._n_active == 0:
                return None
            if self._vectorized:
                cached = self._find_min()
            else:
                best_t = _INF
                best_seq = 0
                best_lane = -1
                active = self._active
                seq_arr = self._seq
                for lane, lt in enumerate(self._t):
                    if active[lane] and (
                        lt < best_t or (lt == best_t and seq_arr[lane] < best_seq)
                    ):
                        best_t = lt
                        best_seq = seq_arr[lane]
                        best_lane = lane
                cached = (best_t, best_seq, best_lane)
        if cached is None:
            return None
        t, _seq, lane = cached
        self._active[lane] = False
        self._n_active -= 1
        self._min_t = None
        return (t, self._rank_of[lane], int(self._epoch[lane]))

    def push_pop(self, rank: int, t: float, epoch: int) -> Tuple[float, int, int]:
        """Fused ``push(rank, t, epoch)`` + ``pop()`` (one scan, one call).

        The engine's drain loop re-queues a still-runnable rank and
        immediately pops the global minimum; fusing the two skips the
        cache invalidate/recompute round-trip between them.
        """
        lane = self._lane[rank]
        self._next_seq += 1
        if not self._active[lane]:
            self._active[lane] = True
            self._n_active += 1
        self._t[lane] = t
        self._seq[lane] = self._next_seq
        self._epoch[lane] = epoch
        cached = self._min_t
        if cached is not None and (t < cached[0] or cached[2] == lane):
            cached = None  # the fresh entry may now be (or beat) the min
        if cached is None:
            if self._vectorized:
                cached = self._find_min()
            else:
                best_t = _INF
                best_seq = 0
                best_lane = -1
                active = self._active
                seq_arr = self._seq
                for ln, lt in enumerate(self._t):
                    if active[ln] and (
                        lt < best_t or (lt == best_t and seq_arr[ln] < best_seq)
                    ):
                        best_t = lt
                        best_seq = seq_arr[ln]
                        best_lane = ln
                cached = (best_t, best_seq, best_lane)
        mt, _seq, mlane = cached
        self._active[mlane] = False
        self._n_active -= 1
        self._min_t = None
        return (mt, self._rank_of[mlane], int(self._epoch[mlane]))
