"""Discrete-event simulated MPI+OpenMP substrate.

Rank programs are Python generators yielding :mod:`repro.sim.actions`
objects (compute kernels, MPI operations, OpenMP parallel loops).  The
:class:`~repro.sim.engine.Engine` advances virtual time per location,
matches messages, completes collectives and emits a stream of trace events
that the measurement layer (:mod:`repro.measure`) records.

The work performed between events is described by
:class:`~repro.sim.kernels.KernelSpec` objects carrying *both* a physical
cost model (flops, bytes -> roofline seconds under contention and noise)
and the static counts (OpenMP loop iterations, LLVM basic blocks and
statements, instructions) that the paper's clock-increment models consume.
"""

from repro.sim.kernels import KernelSpec, WorkDelta, EMPTY_DELTA
from repro.sim.actions import (
    ANY_SOURCE,
    Enter,
    Leave,
    Compute,
    CallBurst,
    ParallelFor,
    Send,
    Recv,
    Isend,
    Irecv,
    Wait,
    Waitall,
    Allreduce,
    Alltoall,
    Allgather,
    Bcast,
    Reduce,
    Barrier,
    Checkpoint,
)
from repro.sim.costmodel import CostModel, ComputeContext
from repro.sim.program import Program, ProgramContext
from repro.sim.engine import Engine, SimResult, SimCrashError, RestartPlan
from repro.sim.recovery import (
    RecoveryConfig,
    RecoveryOutcome,
    RestartRecord,
    ExcessiveRestartsError,
    run_with_recovery,
)

__all__ = [
    "ANY_SOURCE",
    "KernelSpec",
    "WorkDelta",
    "EMPTY_DELTA",
    "Enter",
    "Leave",
    "Compute",
    "CallBurst",
    "ParallelFor",
    "Send",
    "Recv",
    "Isend",
    "Irecv",
    "Wait",
    "Waitall",
    "Allreduce",
    "Alltoall",
    "Allgather",
    "Bcast",
    "Reduce",
    "Barrier",
    "Checkpoint",
    "CostModel",
    "ComputeContext",
    "Program",
    "ProgramContext",
    "Engine",
    "SimResult",
    "SimCrashError",
    "RestartPlan",
    "RecoveryConfig",
    "RecoveryOutcome",
    "RestartRecord",
    "ExcessiveRestartsError",
    "run_with_recovery",
]
