"""Kernel work specifications and work deltas between trace events.

A :class:`KernelSpec` describes one *unit* of a compute kernel along two
axes:

* the **physical** axis -- flops and bytes of memory traffic, which the
  roofline cost model turns into seconds, and
* the **static-count** axis -- OpenMP loop iterations, LLVM basic blocks,
  LLVM statements and machine instructions per unit.  In the paper these
  counts are produced by an LLVM instrumentation plugin at compile time;
  here every kernel declares the counts the compiler would have derived
  (see DESIGN.md section 1 for the substitution argument).

A :class:`WorkDelta` is the aggregate work executed on one location since
its previous recorded trace event; the logical clocks of
:mod:`repro.clocks` compute their increments exclusively from it, exactly
as the paper's Sec. II-A models prescribe:

=========  ===============================================================
lt_1       +1 per event (burst events included)
lt_loop    additionally +1 per OpenMP loop iteration (``omp_iters``)
lt_bb      +1 per event + ``bb`` + X * ``omp_calls``       (X = 100)
lt_stmt    +1 per event + ``stmt`` + Y * ``omp_calls``     (Y = 4300)
lt_hwctr   +Delta(instruction counter), spin-wait instructions included
=========  ===============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.validation import check_nonnegative

__all__ = ["KernelSpec", "WorkDelta", "EMPTY_DELTA"]


@dataclass(frozen=True)
class KernelSpec:
    """Per-unit work description of a compute kernel.

    Parameters
    ----------
    name:
        Identifier used in diagnostics only (call paths are determined by
        the program's ``Enter``/``Leave``/``CallBurst`` structure).
    flops_per_unit / bytes_per_unit:
        Physical work per unit (roofline inputs).
    omp_iters_per_unit:
        OpenMP loop iterations per unit.  Only loops executed via
        ``ParallelFor`` count these at run time; serial compute has the
        field on its spec but the engine zeroes it (matching Opari2, which
        instruments only OpenMP loop constructs).
    bb_per_unit / stmt_per_unit / instr_per_unit:
        Static LLVM basic-block / statement and dynamic instruction counts.
    memory_scope:
        Which resource domain the kernel's memory traffic contends on:
        ``"numa"`` (default), ``"socket"`` (irregular access patterns that
        stress the shared L3 / cross-CCX fabric) or ``"none"``
        (compute-bound; contention-free).
    additive:
        Roofline composition.  ``False`` (default): streaming code whose
        ALU work overlaps memory traffic -- duration is
        ``max(t_flops, t_mem)`` and extra flop-side instrumentation hides
        under memory stalls.  ``True``: latency-bound, dependent-load code
        (assembly/pointer chasing) where nothing overlaps -- duration is
        ``t_flops + t_mem`` and counting instrumentation is fully exposed
        (the MiniFE-init vs CG-solve overhead asymmetry in the paper's
        Table I).
    jitter:
        Extra per-execution, per-thread lognormal sigma on the physical
        duration -- *intrinsic* kernel variability (data-dependent
        branches, bank conflicts).  It perturbs physical time only, never
        the static counts: this is what creates the paper's
        "wait states that are balanced in terms of basic blocks and
        statements" (LULESH nodal barrier waits, TeaLeaf-4 all-to-all
        waits) which only tsc and lt_hwctr can see.
    """

    name: str
    flops_per_unit: float = 0.0
    bytes_per_unit: float = 0.0
    omp_iters_per_unit: float = 0.0
    bb_per_unit: float = 0.0
    stmt_per_unit: float = 0.0
    instr_per_unit: float = 0.0
    memory_scope: str = "numa"
    additive: bool = False
    jitter: float = 0.0

    def __post_init__(self):
        for f in ("flops_per_unit", "bytes_per_unit", "omp_iters_per_unit",
                  "bb_per_unit", "stmt_per_unit", "instr_per_unit", "jitter"):
            check_nonnegative(f, getattr(self, f))
        if self.memory_scope not in ("numa", "socket", "none"):
            raise ValueError(f"memory_scope must be numa/socket/none, got {self.memory_scope!r}")

    @staticmethod
    def balanced(
        name: str,
        flops_per_unit: float,
        bytes_per_unit: float,
        omp_iters_per_unit: float = 0.0,
        stmt_per_flop: float = 1.0,
        memory_scope: str = "numa",
    ) -> "KernelSpec":
        """Build a spec with plausible default count ratios.

        Typical compiled numerical code has ~3 statements per basic block
        and ~1.3 machine instructions per statement; ``stmt_per_flop``
        scales statement density relative to floating-point work (integer
        and pointer-heavy code has more statements per flop).
        """
        stmt = flops_per_unit * stmt_per_flop
        return KernelSpec(
            name=name,
            flops_per_unit=flops_per_unit,
            bytes_per_unit=bytes_per_unit,
            omp_iters_per_unit=omp_iters_per_unit,
            bb_per_unit=stmt / 3.0,
            stmt_per_unit=stmt,
            instr_per_unit=stmt * 1.3,
            memory_scope=memory_scope,
        )

    def scaled_counts(self, units: float) -> "WorkDelta":
        """Total static counts for ``units`` units of this kernel."""
        check_nonnegative("units", units)
        return WorkDelta(
            omp_iters=self.omp_iters_per_unit * units,
            bb=self.bb_per_unit * units,
            stmt=self.stmt_per_unit * units,
            instr=self.instr_per_unit * units,
        )


@dataclass(frozen=True)
class WorkDelta:
    """Aggregate work on one location since its previous trace event.

    ``burst_calls`` is the number of instrumented enter/leave *pairs*
    represented by an aggregated ``CallBurst`` event (each pair contributes
    two recorded events to the lt_1 count and two per-event overheads).
    ``omp_calls`` counts calls into the OpenMP runtime (parallel, for,
    fork, join, barrier), each worth X basic blocks / Y statements under
    the paper's fitted external-effort constants.
    """

    omp_iters: float = 0.0
    bb: float = 0.0
    stmt: float = 0.0
    instr: float = 0.0
    burst_calls: float = 0.0
    omp_calls: float = 0.0

    def __add__(self, other: "WorkDelta") -> "WorkDelta":
        return WorkDelta(
            omp_iters=self.omp_iters + other.omp_iters,
            bb=self.bb + other.bb,
            stmt=self.stmt + other.stmt,
            instr=self.instr + other.instr,
            burst_calls=self.burst_calls + other.burst_calls,
            omp_calls=self.omp_calls + other.omp_calls,
        )

    def with_instr(self, instr: float) -> "WorkDelta":
        """A copy with the instruction count replaced (spin-wait accrual)."""
        return replace(self, instr=instr)

    def without_omp_iters(self) -> "WorkDelta":
        """A copy with OpenMP loop iterations zeroed (serial execution)."""
        if self.omp_iters == 0.0:
            return self
        return replace(self, omp_iters=0.0)

    @property
    def is_empty(self) -> bool:
        return (
            self.omp_iters == 0.0
            and self.bb == 0.0
            and self.stmt == 0.0
            and self.instr == 0.0
            and self.burst_calls == 0.0
            and self.omp_calls == 0.0
        )


EMPTY_DELTA = WorkDelta()
