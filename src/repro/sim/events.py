"""Trace event model (the OTF2-like record vocabulary).

The engine emits these events to the measurement layer; the clocks assign
timestamps to them; the analyzer replays them.  Events are deliberately
lightweight (``__slots__``) because realistic runs produce 10^5..10^6 of
them.

Event kinds
-----------

=============  ==========================================================
ENTER / LEAVE  Region entry/exit (user, MPI, or OpenMP region).
BURST          Aggregate of N instrumented enter/leave pairs of a small
               function (see :class:`repro.sim.actions.CallBurst`); spans
               ``[t_enter, t]`` on the location.
MPI_SEND       Message send record (at initiation); ``aux = match_id``.
MPI_RECV       Message receive-complete record; ``aux = match_id``.
COLL_END       Collective completion record; ``aux = (coll_id, size)``.
FORK / JOIN    OpenMP team fork/join on the master; ``aux = omp_id``.
TEAM_BEGIN     First event of a worker in a team; ``aux = omp_id``.
OBAR_ENTER /   Implicit (or explicit) OpenMP barrier; the leave record
OBAR_LEAVE     carries ``aux = (omp_id, team_size)`` and synchronizes the
               logical clocks of the whole team.
FAULT          An injected fault became visible on this location (message
               retransmit after loss, duplicate delivery); ``aux`` is the
               match id of the affected message, the region names the
               fault kind (``fault_msg_loss`` / ``fault_msg_dup``).
RESTART        Recovery resumed all ranks from the last application-level
               checkpoint; ``aux = (restart_id, n_ranks)``.  Emitted on
               every rank's master location at the common resume time and
               synchronizing the logical clocks of the whole job (the
               restart protocol is a global barrier).
=============  ==========================================================

Work deltas: every event may carry the :class:`~repro.sim.kernels.WorkDelta`
accumulated on its location since the previous event.  By convention the
delta hangs on the event *ending* the interval in which the work happened.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.kernels import WorkDelta, EMPTY_DELTA

__all__ = [
    "ENTER",
    "LEAVE",
    "BURST",
    "MPI_SEND",
    "MPI_RECV",
    "COLL_END",
    "FORK",
    "JOIN",
    "TEAM_BEGIN",
    "OBAR_ENTER",
    "OBAR_LEAVE",
    "FAULT",
    "RESTART",
    "EVENT_NAMES",
    "Ev",
    "Paradigm",
    "RegionRegistry",
]

ENTER = 0
LEAVE = 1
BURST = 2
MPI_SEND = 3
MPI_RECV = 4
COLL_END = 5
FORK = 6
JOIN = 7
TEAM_BEGIN = 8
OBAR_ENTER = 9
OBAR_LEAVE = 10
FAULT = 11
RESTART = 12

EVENT_NAMES = {
    ENTER: "ENTER",
    LEAVE: "LEAVE",
    BURST: "BURST",
    MPI_SEND: "MPI_SEND",
    MPI_RECV: "MPI_RECV",
    COLL_END: "COLL_END",
    FORK: "FORK",
    JOIN: "JOIN",
    TEAM_BEGIN: "TEAM_BEGIN",
    OBAR_ENTER: "OBAR_ENTER",
    OBAR_LEAVE: "OBAR_LEAVE",
    FAULT: "FAULT",
    RESTART: "RESTART",
}


class Ev:
    """One trace event on one location.

    Attributes
    ----------
    etype:  event kind constant (see module docstring)
    region: region id (:class:`RegionRegistry`), or -1 where meaningless
    t:      physical (virtual-seconds) timestamp
    delta:  work since the previous event on this location
    aux:    kind-specific payload (match id, collective id, team info, ...)
    t_enter: for BURST events, the start of the aggregated interval
    """

    __slots__ = ("etype", "region", "t", "delta", "aux", "t_enter")

    def __init__(self, etype: int, region: int, t: float,
                 delta: WorkDelta = EMPTY_DELTA, aux=None, t_enter: float = 0.0):
        self.etype = etype
        self.region = region
        self.t = t
        self.delta = delta
        self.aux = aux
        self.t_enter = t_enter

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = EVENT_NAMES.get(self.etype, str(self.etype))
        return f"Ev({name}, region={self.region}, t={self.t:.6g}, aux={self.aux})"


class Paradigm:
    """Region paradigm classification used by the metric tree."""

    USER = "user"
    MPI = "mpi"
    OMP = "omp"
    MEASUREMENT = "measurement"


class RegionRegistry:
    """Interns region names to integer ids with paradigm metadata.

    MPI region names start with ``MPI_``, OpenMP runtime regions with
    ``omp_`` -- the classifier mirrors how Score-P tags regions by adapter.
    """

    def __init__(self):
        self._by_name = {}
        self.names = []
        self.paradigms = []

    def intern(self, name: str, paradigm: Optional[str] = None) -> int:
        rid = self._by_name.get(name)
        if rid is not None:
            return rid
        if paradigm is None:
            if name.startswith("MPI_"):
                paradigm = Paradigm.MPI
            elif name.startswith("omp_"):
                paradigm = Paradigm.OMP
            else:
                paradigm = Paradigm.USER
        rid = len(self.names)
        self._by_name[name] = rid
        self.names.append(name)
        self.paradigms.append(paradigm)
        return rid

    def name(self, rid: int) -> str:
        return self.names[rid]

    def paradigm(self, rid: int) -> str:
        return self.paradigms[rid]

    def id_of(self, name: str) -> int:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self.names)
