"""Pure wait-state severity formulas (Scalasca pattern definitions).

These functions are clock-agnostic: they take timestamps in whatever unit
the active clock produces (seconds for tsc, logical units otherwise) and
return severities in the same unit.  Keeping them pure makes the pattern
semantics unit-testable independent of the trace walker.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["nxn_waits", "barrier_split", "late_sender_wait", "late_receiver_wait"]


def nxn_waits(enters: Sequence[float], completion: float) -> List[float]:
    """Wait-at-NxN severity per participant.

    In an all-to-all style collective no participant can leave before the
    last one has entered, so everyone who arrived early waits:
    ``wait_i = max_j(enter_j) - enter_i``, clamped into the participant's
    own interval ``[0, completion - enter_i]``.
    """
    if not enters:
        return []
    latest = max(enters)
    return [max(0.0, min(latest, completion) - e) for e in enters]


def barrier_split(enters: Sequence[float], leaves: Sequence[float]) -> Tuple[List[float], List[float]]:
    """(waits, overheads) for a barrier instance.

    Each member's interval is ``d_i = leave_i - enter_i``; the *last*
    arriver waits approximately nothing, so the minimum interval is the
    intrinsic barrier overhead, and everything above it is waiting:
    ``overhead_i = min_j d_j``, ``wait_i = d_i - overhead_i``.
    """
    if len(enters) != len(leaves):
        raise ValueError("enters and leaves must have the same length")
    if not enters:
        return [], []
    durations = [l - e for e, l in zip(enters, leaves)]
    overhead = max(0.0, min(durations))
    waits = [max(0.0, d - overhead) for d in durations]
    return waits, [overhead] * len(durations)


def late_sender_wait(send_ts: float, recv_enter_ts: float, recv_complete_ts: float) -> float:
    """Late-sender severity at the receiver.

    The receiver blocked from ``recv_enter_ts``; the message only started
    at ``send_ts``.  The waiting ends at the latest at completion.
    """
    return max(0.0, min(send_ts, recv_complete_ts) - recv_enter_ts)


def late_receiver_wait(send_ts: float, recv_post_ts: float, complete_ts: float) -> float:
    """Late-receiver severity at the sender (rendezvous protocol only).

    A rendezvous sender cannot progress until the receive is posted; if
    the receiver posted after the send started, the sender waited.
    """
    return max(0.0, min(recv_post_ts, complete_ts) - send_ts)
