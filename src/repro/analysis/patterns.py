"""Pure wait-state severity formulas (Scalasca pattern definitions).

These functions are clock-agnostic: they take timestamps in whatever unit
the active clock produces (seconds for tsc, logical units otherwise) and
return severities in the same unit.  Keeping them pure makes the pattern
semantics unit-testable independent of the trace walker.

Each per-instance function switches to a NumPy evaluation above
:data:`VECTOR_MIN` participants; the array expressions perform the exact
same IEEE operations per element as the scalar comprehensions, so both
paths are bit-identical (locked by ``tests/test_columnar.py``).  The
``*_batch`` variants evaluate *many* instances in one shot over flattened
arrays (``np.maximum.reduceat`` per group) for bulk consumers such as the
benchmark harness.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "nxn_waits",
    "nxn_waits_batch",
    "barrier_split",
    "barrier_split_batch",
    "late_sender_wait",
    "late_sender_wait_many",
    "late_receiver_wait",
    "late_receiver_wait_many",
]

#: participant count above which the per-instance formulas evaluate as
#: NumPy expressions; below it, plain Python is faster (array allocation
#: overhead exceeds the work).  Both paths are bit-identical.
VECTOR_MIN = 32


def nxn_waits(enters: Sequence[float], completion: float) -> List[float]:
    """Wait-at-NxN severity per participant.

    In an all-to-all style collective no participant can leave before the
    last one has entered, so everyone who arrived early waits:
    ``wait_i = max_j(enter_j) - enter_i``, clamped into the participant's
    own interval ``[0, completion - enter_i]``.
    """
    if not len(enters):
        return []
    if len(enters) >= VECTOR_MIN:
        e = np.asarray(enters, dtype=np.float64)
        lim = min(float(e.max()), completion)
        return np.maximum(0.0, lim - e).tolist()
    latest = max(enters)
    lim = min(latest, completion)
    return [max(0.0, lim - e) for e in enters]


def nxn_waits_batch(
    enters: np.ndarray, starts: np.ndarray, completions: np.ndarray
) -> np.ndarray:
    """Wait-at-NxN severities for many collective instances at once.

    ``enters`` is the flat concatenation of all instances' enter
    timestamps, ``starts[k]`` the offset at which instance ``k`` begins,
    and ``completions[k]`` its completion timestamp.  Returns the flat
    severity array aligned with ``enters``; element for element identical
    to calling :func:`nxn_waits` per instance.
    """
    e = np.asarray(enters, dtype=np.float64)
    if not len(e):
        return np.empty(0, dtype=np.float64)
    starts = np.asarray(starts, dtype=np.int64)
    lim = np.minimum(
        np.maximum.reduceat(e, starts),
        np.asarray(completions, dtype=np.float64),
    )
    sizes = np.diff(np.append(starts, len(e)))
    return np.maximum(0.0, np.repeat(lim, sizes) - e)


def barrier_split(enters: Sequence[float], leaves: Sequence[float]) -> Tuple[List[float], List[float]]:
    """(waits, overheads) for a barrier instance.

    Each member's interval is ``d_i = leave_i - enter_i``; the *last*
    arriver waits approximately nothing, so the minimum interval is the
    intrinsic barrier overhead, and everything above it is waiting:
    ``overhead_i = min_j d_j``, ``wait_i = d_i - overhead_i``.
    """
    if len(enters) != len(leaves):
        raise ValueError("enters and leaves must have the same length")
    if not len(enters):
        return [], []
    if len(enters) >= VECTOR_MIN:
        d = np.asarray(leaves, dtype=np.float64) - np.asarray(enters, dtype=np.float64)
        overhead = max(0.0, float(d.min()))
        return np.maximum(0.0, d - overhead).tolist(), [overhead] * len(d)
    durations = [l - e for e, l in zip(enters, leaves)]
    overhead = max(0.0, min(durations))
    waits = [max(0.0, d - overhead) for d in durations]
    return waits, [overhead] * len(durations)


def barrier_split_batch(
    enters: np.ndarray, leaves: np.ndarray, starts: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """(waits, overheads) for many barrier instances at once.

    Flat-array analogue of :func:`barrier_split` with the same
    ``starts`` convention as :func:`nxn_waits_batch`; element for element
    identical to the per-instance function.
    """
    e = np.asarray(enters, dtype=np.float64)
    if not len(e):
        return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.float64)
    d = np.asarray(leaves, dtype=np.float64) - e
    starts = np.asarray(starts, dtype=np.int64)
    overhead = np.maximum(0.0, np.minimum.reduceat(d, starts))
    sizes = np.diff(np.append(starts, len(d)))
    o_flat = np.repeat(overhead, sizes)
    return np.maximum(0.0, d - o_flat), o_flat


def late_sender_wait(send_ts: float, recv_enter_ts: float, recv_complete_ts: float) -> float:
    """Late-sender severity at the receiver.

    The receiver blocked from ``recv_enter_ts``; the message only started
    at ``send_ts``.  The waiting ends at the latest at completion.
    """
    return max(0.0, min(send_ts, recv_complete_ts) - recv_enter_ts)


def late_sender_wait_many(
    send_ts: np.ndarray, recv_enter_ts: np.ndarray, recv_complete_ts: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`late_sender_wait` over aligned message arrays."""
    return np.maximum(
        0.0,
        np.minimum(np.asarray(send_ts, dtype=np.float64), recv_complete_ts)
        - recv_enter_ts,
    )


def late_receiver_wait(send_ts: float, recv_post_ts: float, complete_ts: float) -> float:
    """Late-receiver severity at the sender (rendezvous protocol only).

    A rendezvous sender cannot progress until the receive is posted; if
    the receiver posted after the send started, the sender waited.
    """
    return max(0.0, min(recv_post_ts, complete_ts) - send_ts)


def late_receiver_wait_many(
    send_ts: np.ndarray, recv_post_ts: np.ndarray, complete_ts: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`late_receiver_wait` over aligned message arrays."""
    return np.maximum(
        0.0,
        np.minimum(np.asarray(recv_post_ts, dtype=np.float64), complete_ts)
        - np.asarray(send_ts, dtype=np.float64),
    )
