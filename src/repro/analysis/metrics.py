"""The metric hierarchy (paper Fig. 1) and aggregation helpers.

Severities are stored at the *leaf* metrics; every inner node's value is
the sum of its children.  Delay-cost metrics live outside the *time*
tree, exactly as in Scalasca ("higher-order analysis results that are not
grouped under *time* but are presented as additional metrics").
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cube.profile import CubeProfile

__all__ = [
    "COMP",
    "MPI_P2P_LATESENDER",
    "MPI_P2P_LATERECEIVER",
    "MPI_P2P_REST",
    "MPI_COLL_WAIT_NXN",
    "MPI_COLL_WAIT_BARRIER",
    "MPI_COLL_REST",
    "OMP_MANAGEMENT",
    "OMP_BARRIER_WAIT",
    "OMP_BARRIER_OVERHEAD",
    "IDLE_THREADS",
    "DELAY_N2N",
    "DELAY_LATESENDER",
    "TIME_LEAVES",
    "DELAY_METRICS",
    "METRIC_TREE",
    "MPI_LEAVES",
    "OMP_LEAVES",
    "render_metric_tree",
    "group_totals",
]

COMP = "comp"
MPI_P2P_LATESENDER = "mpi_p2p_latesender"
MPI_P2P_LATERECEIVER = "mpi_p2p_latereceiver"
MPI_P2P_REST = "mpi_p2p_rest"
MPI_COLL_WAIT_NXN = "mpi_coll_wait_nxn"
MPI_COLL_WAIT_BARRIER = "mpi_coll_wait_barrier"
MPI_COLL_REST = "mpi_coll_rest"
OMP_MANAGEMENT = "omp_management"
OMP_BARRIER_WAIT = "omp_barrier_wait"
OMP_BARRIER_OVERHEAD = "omp_barrier_overhead"
IDLE_THREADS = "idle_threads"

DELAY_N2N = "delay_mpi_collective_n2n"
DELAY_LATESENDER = "delay_mpi_p2p_latesender"

#: the leaves whose sum is the *time* metric
TIME_LEAVES: Tuple[str, ...] = (
    COMP,
    MPI_P2P_LATESENDER,
    MPI_P2P_LATERECEIVER,
    MPI_P2P_REST,
    MPI_COLL_WAIT_NXN,
    MPI_COLL_WAIT_BARRIER,
    MPI_COLL_REST,
    OMP_MANAGEMENT,
    OMP_BARRIER_WAIT,
    OMP_BARRIER_OVERHEAD,
    IDLE_THREADS,
)

DELAY_METRICS: Tuple[str, ...] = (DELAY_N2N, DELAY_LATESENDER)

MPI_LEAVES: Tuple[str, ...] = (
    MPI_P2P_LATESENDER,
    MPI_P2P_LATERECEIVER,
    MPI_P2P_REST,
    MPI_COLL_WAIT_NXN,
    MPI_COLL_WAIT_BARRIER,
    MPI_COLL_REST,
)

OMP_LEAVES: Tuple[str, ...] = (OMP_MANAGEMENT, OMP_BARRIER_WAIT, OMP_BARRIER_OVERHEAD)

#: (name, description, children) -- the selection shown in the paper's Fig. 1
METRIC_TREE = (
    "time",
    "Total time",
    (
        (COMP, "Computation", ()),
        (
            "mpi",
            "MPI calls",
            (
                (
                    "p2p",
                    "MPI point-to-point communication",
                    (
                        (MPI_P2P_LATESENDER, "Receiver waiting for a late message", ()),
                        (MPI_P2P_LATERECEIVER, "Sender waiting for a receiver", ()),
                        (MPI_P2P_REST, "Remaining point-to-point time", ()),
                    ),
                ),
                (
                    "collective",
                    "MPI collective communication",
                    (
                        (MPI_COLL_WAIT_NXN, "Waiting in MPI all-to-all", ()),
                        (MPI_COLL_WAIT_BARRIER, "Waiting in MPI barrier", ()),
                        (MPI_COLL_REST, "Remaining collective time", ()),
                    ),
                ),
            ),
        ),
        (
            "omp",
            "Time in OpenMP runtime",
            (
                (OMP_MANAGEMENT, "Starting and ending parallel regions", ()),
                (
                    "synchronization",
                    "Time to synchronize threads",
                    (
                        (OMP_BARRIER_WAIT, "Waiting in an OpenMP barrier", ()),
                        (OMP_BARRIER_OVERHEAD, "Overhead of OpenMP barriers", ()),
                    ),
                ),
            ),
        ),
        (IDLE_THREADS, "Idle worker threads", ()),
    ),
)


def render_metric_tree() -> str:
    """ASCII rendering of the metric tree (reproduces Fig. 1)."""
    lines: List[str] = []

    def walk(node, depth: int) -> None:
        name, desc, children = node
        lines.append(f"{'  ' * depth}{name:<24} {desc}")
        for child in children:
            walk(child, depth + 1)

    walk(METRIC_TREE, 0)
    lines.append("")
    lines.append("additional metrics (outside the time tree):")
    lines.append(f"{DELAY_N2N:<26} Root causes of all-to-all wait states")
    lines.append(f"{DELAY_LATESENDER:<26} Root causes of late-sender wait states")
    return "\n".join(lines)


def group_totals(profile: CubeProfile) -> Dict[str, float]:
    """%T of the four paradigms comp / mpi / omp / idle (Figs. 7 and 8)."""
    total = profile.total_time()
    if total <= 0.0:
        return {"comp": 0.0, "mpi": 0.0, "omp": 0.0, "idle_threads": 0.0}

    def pct(metrics) -> float:
        return 100.0 * sum(profile.metric_total(m) for m in metrics) / total

    return {
        "comp": pct((COMP,)),
        "mpi": pct(MPI_LEAVES),
        "omp": pct(OMP_LEAVES),
        "idle_threads": pct((IDLE_THREADS,)),
    }
