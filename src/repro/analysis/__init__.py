"""Scalasca analogue: wait-state analysis, delay costs, profile building.

``analyze_trace`` replays a timestamped trace and produces a
:class:`~repro.cube.profile.CubeProfile` with the metric hierarchy of the
paper's Fig. 1 plus the delay-cost metrics used in Sec. V.
"""

from repro.analysis.metrics import (
    COMP,
    MPI_P2P_LATESENDER,
    MPI_P2P_LATERECEIVER,
    MPI_P2P_REST,
    MPI_COLL_WAIT_NXN,
    MPI_COLL_WAIT_BARRIER,
    MPI_COLL_REST,
    OMP_MANAGEMENT,
    OMP_BARRIER_WAIT,
    OMP_BARRIER_OVERHEAD,
    IDLE_THREADS,
    DELAY_N2N,
    DELAY_LATESENDER,
    TIME_LEAVES,
    METRIC_TREE,
    render_metric_tree,
    group_totals,
)
from repro.analysis.patterns import (
    nxn_waits,
    nxn_waits_batch,
    barrier_split,
    barrier_split_batch,
    late_sender_wait,
    late_sender_wait_many,
    late_receiver_wait,
    late_receiver_wait_many,
)
from repro.analysis.analyzer import analyze_trace
from repro.analysis.report import render_report, top_callpaths, load_balance_summary
from repro.analysis.plain_profile import plain_profile, PLAIN_TIME

__all__ = [
    "COMP",
    "MPI_P2P_LATESENDER",
    "MPI_P2P_LATERECEIVER",
    "MPI_P2P_REST",
    "MPI_COLL_WAIT_NXN",
    "MPI_COLL_WAIT_BARRIER",
    "MPI_COLL_REST",
    "OMP_MANAGEMENT",
    "OMP_BARRIER_WAIT",
    "OMP_BARRIER_OVERHEAD",
    "IDLE_THREADS",
    "DELAY_N2N",
    "DELAY_LATESENDER",
    "TIME_LEAVES",
    "METRIC_TREE",
    "render_metric_tree",
    "group_totals",
    "nxn_waits",
    "nxn_waits_batch",
    "barrier_split",
    "barrier_split_batch",
    "late_sender_wait",
    "late_sender_wait_many",
    "late_receiver_wait",
    "late_receiver_wait_many",
    "analyze_trace",
    "render_report",
    "top_callpaths",
    "load_balance_summary",
    "plain_profile",
    "PLAIN_TIME",
]
