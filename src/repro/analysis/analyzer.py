"""Trace replay: build a Scalasca-style profile from a timestamped trace.

One merged-order pass over all locations computes, in the active clock's
units:

* exclusive time per (metric, call path, location) for computation, MPI
  and OpenMP management,
* wait-state severities: late sender / late receiver (point-to-point),
  Wait-at-NxN and Wait-at-Barrier (collectives), OpenMP barrier
  wait/overhead,
* idle-thread time: while a rank's master executes outside parallel
  regions, its W workers idle; the severity lands on the master's current
  call path scaled by W (this is why single-threaded routines like
  MiniFE's ``generate_matrix_structure`` dominate *idle_threads* without
  dominating *comp* -- paper Sec. V-C2),
* delay costs: for each NxN instance the *delayer* (last rank to enter)
  is identified and every other rank's waiting time is attributed to the
  call paths where the delayer spent more than the waiter since the last
  synchronisation point (a simplified form of Scalasca's root-cause
  analysis, see DESIGN.md "Known deviations"); late-sender waits are
  attributed the same way against the sender.

Because all formulas consume the clock's own timestamps, running the same
analyzer over tsc and logical timestamps reproduces the paper's central
comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis import metrics as M
from repro.analysis.patterns import barrier_split, late_receiver_wait, late_sender_wait, nxn_waits
from repro.clocks.base import TimestampedTrace
from repro.cube.profile import CubeProfile
from repro.cube.systemtree import SystemTree
from repro.sim.events import (
    BURST,
    COLL_END,
    ENTER,
    FORK,
    JOIN,
    LEAVE,
    MPI_RECV,
    MPI_SEND,
    OBAR_ENTER,
    OBAR_LEAVE,
    TEAM_BEGIN,
)

__all__ = ["analyze_trace", "analyze_stream"]

# region kinds (classification of stack-top time)
_K_USER = 0  # -> comp
_K_MPI_P2P = 1
_K_MPI_COLL = 2
_K_OMP_PAR = 3  # -> omp_management
_K_OMP_FOR = 4  # -> comp (loop body is user computation)
_K_OMP_BAR = 5  # handled by barrier groups, not phase-A attribution

_P2P_REGIONS = {"MPI_Send", "MPI_Isend", "MPI_Recv", "MPI_Irecv", "MPI_Wait", "MPI_Waitall"}


def _classify(name: str) -> int:
    if name.startswith("MPI_"):
        return _K_MPI_P2P if name in _P2P_REGIONS else _K_MPI_COLL
    if name.startswith("omp_parallel"):
        return _K_OMP_PAR
    if name.startswith("omp_for"):
        return _K_OMP_FOR
    if name.startswith("omp_ibarrier") or name.startswith("omp_barrier"):
        return _K_OMP_BAR
    return _K_USER


def analyze_trace(tt: TimestampedTrace) -> CubeProfile:
    """Analyze ``tt`` and return the profile (severities in clock units)."""
    trace = tt.trace
    ts = tt.times
    ev_index = [0] * trace.n_locations

    def stream():
        for loc, ev in trace.merged():
            i = ev_index[loc]
            ev_index[loc] = i + 1
            yield loc, ev, float(ts[loc][i])

    return analyze_stream(
        stream(),
        mode=tt.mode,
        regions=trace.regions,
        locations=trace.locations,
        pinning=trace.pinning,
    )


def analyze_stream(events, *, mode, regions, locations, pinning=None) -> CubeProfile:
    """Wait-state analysis over a merged-order ``(loc, ev, t)`` stream.

    The streaming core of :func:`analyze_trace`: walker state is bounded
    by locations x call paths plus in-flight synchronisation groups, so
    an out-of-core archive (:class:`repro.measure.shards.ShardedTrace`)
    can be analyzed without materializing the whole trace -- feed it
    ``(loc, ev, ev.t)`` for a physical-time (tsc) analysis.
    """
    n_loc = len(locations)

    system = SystemTree(
        locations,
        {r: pinning.node_of(r) for r in pinning.ranks} if pinning else {},
    )
    profile = CubeProfile(system, M.TIME_LEAVES, mode=mode)
    ct = profile.calltree
    root = ct.intern(())

    # region-id -> (name, kind), filled lazily
    kind_of: List[Optional[Tuple[str, int]]] = [None] * len(regions)

    def region_info(rid: int) -> Tuple[str, int]:
        info = kind_of[rid]
        if info is None:
            name = regions.name(rid)
            info = (name, _classify(name))
            kind_of[rid] = info
        return info

    # per-location walker state
    cp_stack: List[List[int]] = [[root] for _ in range(n_loc)]
    path_stack: List[List[tuple]] = [[()] for _ in range(n_loc)]
    kind_stack: List[List[int]] = [[_K_USER] for _ in range(n_loc)]
    enter_stack: List[List[float]] = [[0.0] for _ in range(n_loc)]
    last_ts: List[float] = [0.0] * n_loc
    started: List[bool] = [False] * n_loc

    loc_rank = [r for (r, _t) in locations]
    is_master = [t == 0 for (_r, t) in locations]
    threads_per_rank: Dict[int, int] = {}
    for (r, _t) in locations:
        threads_per_rank[r] = threads_per_rank.get(r, 0) + 1
    workers_of = {r: n - 1 for r, n in threads_per_rank.items()}
    in_par_depth: Dict[int, int] = {loc: 0 for loc in range(n_loc)}
    # Workers outside a team are idle; their gaps are accounted through the
    # master's serial time (x W), so their own dt must not be attributed.
    worker_idle: List[bool] = [not m for m in is_master]

    # child-callpath intern cache: (parent cpid, region id) -> cpid
    child_cache: Dict[Tuple[int, int], int] = {}

    def child_cp(parent: int, rid: int, parent_path: tuple, name: str) -> int:
        key = (parent, rid)
        cpid = child_cache.get(key)
        if cpid is None:
            cpid = ct.intern(parent_path + (name,))
            child_cache[key] = cpid
        return cpid

    # phase-A accumulators needing post-processing
    p2p_total: Dict[Tuple[int, int], float] = {}
    coll_total: Dict[Tuple[int, int], float] = {}
    ls_wait: Dict[Tuple[int, int], float] = {}
    lr_wait: Dict[Tuple[int, int], float] = {}
    coll_wait_cells: Dict[Tuple[int, int], float] = {}

    # delay-cost state (per rank, masters only)
    epoch: Dict[int, Dict[int, float]] = {r: {} for r in workers_of}

    # synchronisation bookkeeping
    sends: Dict[int, tuple] = {}  # match -> (ts, loc, cpid, rndv, epoch snapshot, rank)
    fork_info: Dict[int, Tuple[tuple, int]] = {}  # omp_id -> (path, cpid)
    coll_groups: Dict[int, dict] = {}
    bar_groups: Dict[int, dict] = {}

    add = profile.add_id

    for loc, ev, t in events:
        et = ev.etype
        rank = loc_rank[loc]
        master = is_master[loc]

        # ---- phase A: attribute the interval since the previous event ----
        if started[loc]:
            dt = t - last_ts[loc]
        else:
            dt = 0.0
            started[loc] = True
        last_ts[loc] = t

        if dt > 0.0 and not worker_idle[loc]:
            kstack = kind_stack[loc]
            kind = kstack[-1]
            cpid = cp_stack[loc][-1]
            if et == BURST:
                name, _k = region_info(ev.region)
                cpid = child_cp(cp_stack[loc][-1], ev.region, path_stack[loc][-1], name)
                add(M.COMP, cpid, loc, dt)
            elif kind == _K_USER or kind == _K_OMP_FOR:
                add(M.COMP, cpid, loc, dt)
            elif kind == _K_MPI_P2P:
                key = (cpid, loc)
                p2p_total[key] = p2p_total.get(key, 0.0) + dt
            elif kind == _K_MPI_COLL:
                key = (cpid, loc)
                coll_total[key] = coll_total.get(key, 0.0) + dt
            elif kind == _K_OMP_PAR:
                add(M.OMP_MANAGEMENT, cpid, loc, dt)
            # _K_OMP_BAR: barrier groups split this interval below.

            if master:
                if workers_of[rank] > 0 and in_par_depth[loc] == 0:
                    add(M.IDLE_THREADS, cpid, loc, dt * workers_of[rank])
                ep = epoch[rank]
                ep[cpid] = ep.get(cpid, 0.0) + dt

        # ---- stack / pattern effects of the event itself ----
        if et == ENTER:
            name, kind = region_info(ev.region)
            parent = cp_stack[loc][-1]
            cpid = child_cp(parent, ev.region, path_stack[loc][-1], name)
            cp_stack[loc].append(cpid)
            path_stack[loc].append(path_stack[loc][-1] + (name,))
            kind_stack[loc].append(kind)
            enter_stack[loc].append(t)
            if kind == _K_OMP_PAR and master:
                in_par_depth[loc] += 1
        elif et == LEAVE:
            kind = kind_stack[loc][-1]
            if kind == _K_OMP_PAR and master:
                in_par_depth[loc] -= 1
            cp_stack[loc].pop()
            path_stack[loc].pop()
            kind_stack[loc].pop()
            enter_stack[loc].pop()
        elif et == MPI_SEND:
            match_id, rndv = ev.aux
            snap = dict(epoch[rank]) if master else {}
            sends[match_id] = (t, loc, cp_stack[loc][-1], rndv, snap, rank)
        elif et == MPI_RECV:
            send_ts, send_loc, send_cp, rndv, send_snap, _send_rank = sends.pop(ev.aux)
            recv_enter = enter_stack[loc][-1]
            cpid = cp_stack[loc][-1]
            w = late_sender_wait(send_ts, recv_enter, t)
            if w > 0.0:
                key = (cpid, loc)
                ls_wait[key] = ls_wait.get(key, 0.0) + w
                _attribute_delay(
                    profile, M.DELAY_LATESENDER, w, send_snap, epoch[rank], send_loc
                )
            if rndv:
                wlr = late_receiver_wait(send_ts, recv_enter, t)
                if wlr > 0.0:
                    key = (send_cp, send_loc)
                    lr_wait[key] = lr_wait.get(key, 0.0) + wlr
        elif et == COLL_END:
            coll_id, size = ev.aux
            name, _kind = region_info(ev.region)
            grp = coll_groups.setdefault(
                coll_id, {"size": size, "members": [], "barrier": name == "MPI_Barrier"}
            )
            snap = dict(epoch[rank])
            epoch[rank] = {}
            grp["members"].append((loc, cp_stack[loc][-1], enter_stack[loc][-1], t, snap))
            if len(grp["members"]) == size:
                _finish_collective(profile, grp, coll_wait_cells)
                del coll_groups[coll_id]
        elif et == FORK:
            fork_info[ev.aux] = (path_stack[loc][-1], cp_stack[loc][-1])
        elif et == JOIN:
            pass
        elif et == TEAM_BEGIN:
            base_path, base_cp = fork_info[ev.aux]
            cp_stack[loc] = [base_cp]
            path_stack[loc] = [base_path]
            kind_stack[loc] = [_K_OMP_PAR]
            enter_stack[loc] = [t]
            worker_idle[loc] = False
        elif et == OBAR_ENTER:
            name, kind = region_info(ev.region)
            parent = cp_stack[loc][-1]
            cpid = child_cp(parent, ev.region, path_stack[loc][-1], name)
            cp_stack[loc].append(cpid)
            path_stack[loc].append(path_stack[loc][-1] + (name,))
            kind_stack[loc].append(kind)
            enter_stack[loc].append(t)
        elif et == OBAR_LEAVE:
            omp_id, size = ev.aux
            grp = bar_groups.setdefault(omp_id, {"size": size, "members": []})
            grp["members"].append((loc, cp_stack[loc][-1], enter_stack[loc][-1], t))
            cp_stack[loc].pop()
            path_stack[loc].pop()
            kind_stack[loc].pop()
            enter_stack[loc].pop()
            if not master:
                # The implicit barrier ends the worker's participation in
                # this construct; it idles until the next TEAM_BEGIN.
                worker_idle[loc] = True
            if len(grp["members"]) == size:
                _finish_barrier(profile, grp)
                del bar_groups[omp_id]
        # BURST: no stack effect (interval already attributed above)

    if coll_groups or bar_groups:
        raise AssertionError(
            f"incomplete synchronisation groups after replay: "
            f"{len(coll_groups)} collective, {len(bar_groups)} barrier"
        )
    if sends:
        raise AssertionError(f"{len(sends)} sends without matching receives")

    _split_p2p(profile, p2p_total, ls_wait, lr_wait)
    _split_collectives(profile, coll_total, coll_wait_cells)
    return profile


# ---------------------------------------------------------------------------
# pattern finalisation
# ---------------------------------------------------------------------------

def _finish_collective(
    profile: CubeProfile, grp: dict, cells: Dict[Tuple[int, int], float]
) -> None:
    members = grp["members"]
    enters = [m[2] for m in members]
    completion = max(m[3] for m in members)
    waits = nxn_waits(enters, completion)
    metric = M.MPI_COLL_WAIT_BARRIER if grp["barrier"] else M.MPI_COLL_WAIT_NXN
    for (m, w) in zip(members, waits):
        loc, cpid, _enter, _end, _snap = m
        if w > 0.0:
            profile.add_id(metric, cpid, loc, w)
            key = (cpid, loc)
            cells[key] = cells.get(key, 0.0) + w
    if grp["barrier"]:
        return
    # delay costs: the last rank to enter delayed everyone else
    delayer = max(range(len(members)), key=lambda j: enters[j])
    d_loc, _d_cp, _d_enter, _d_end, d_snap = members[delayer]
    for j, (m, w) in enumerate(zip(members, waits)):
        if j == delayer or w <= 0.0:
            continue
        _loc, _cpid, _enter, _end, snap = m
        _attribute_delay(profile, M.DELAY_N2N, w, d_snap, snap, d_loc)


def _attribute_delay(
    profile: CubeProfile,
    metric: str,
    wait: float,
    delayer_epoch: Dict[int, float],
    waiter_epoch: Dict[int, float],
    delayer_loc: int,
) -> None:
    """Distribute ``wait`` over call paths where the delayer did excess work."""
    diffs: Dict[int, float] = {}
    total = 0.0
    for cpid, v in delayer_epoch.items():
        d = v - waiter_epoch.get(cpid, 0.0)
        if d > 0.0:
            diffs[cpid] = d
            total += d
    if total <= 0.0:
        return
    scale = wait / total
    for cpid, d in diffs.items():
        profile.add_id(metric, cpid, delayer_loc, d * scale)


def _finish_barrier(profile: CubeProfile, grp: dict) -> None:
    members = grp["members"]
    waits, overheads = barrier_split([m[2] for m in members], [m[3] for m in members])
    for (m, w, o) in zip(members, waits, overheads):
        loc, cpid, _enter, _leave = m
        profile.add_id(M.OMP_BARRIER_WAIT, cpid, loc, w)
        profile.add_id(M.OMP_BARRIER_OVERHEAD, cpid, loc, o)


def _split_p2p(
    profile: CubeProfile,
    totals: Dict[Tuple[int, int], float],
    ls: Dict[Tuple[int, int], float],
    lr: Dict[Tuple[int, int], float],
) -> None:
    """Split total p2p time into late-sender / late-receiver / rest.

    Waits are capped by the cell's total MPI time so the time tree remains
    a partition of the measured execution.
    """
    for key in set(totals) | set(ls) | set(lr):
        total = totals.get(key, 0.0)
        w_ls = min(ls.get(key, 0.0), total)
        w_lr = min(lr.get(key, 0.0), total - w_ls)
        rest = total - w_ls - w_lr
        cpid, loc = key
        profile.add_id(M.MPI_P2P_LATESENDER, cpid, loc, w_ls)
        profile.add_id(M.MPI_P2P_LATERECEIVER, cpid, loc, w_lr)
        profile.add_id(M.MPI_P2P_REST, cpid, loc, rest)


def _split_collectives(
    profile: CubeProfile,
    totals: Dict[Tuple[int, int], float],
    waits: Dict[Tuple[int, int], float],
) -> None:
    """Remaining (non-wait) collective time per cell."""
    for key, total in totals.items():
        w = min(waits.get(key, 0.0), total)
        cpid, loc = key
        profile.add_id(M.MPI_COLL_REST, cpid, loc, total - w)
