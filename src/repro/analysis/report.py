"""Human-readable analysis reports (the `scalasca -examine` analogue).

Renders a :class:`~repro.cube.profile.CubeProfile` the way an analyst
reads it in Cube: the metric tree with %T severities, the top call paths
per selected metric in %M, and the most/least loaded locations.  Used by
``repro-analyze --report`` and handy in notebooks and tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis import metrics as M
from repro.cube.profile import CubeProfile

__all__ = ["render_report", "top_callpaths", "load_balance_summary"]


def top_callpaths(
    profile: CubeProfile, metric: str, limit: int = 5
) -> List[Tuple[str, float]]:
    """The ``limit`` largest call-path contributors to ``metric`` in %M."""
    shares = profile.metric_selection_percent(metric)
    rows = sorted(shares.items(), key=lambda kv: -kv[1])[:limit]
    return [("/".join(p) if p else "<root>", v) for p, v in rows]


def load_balance_summary(profile: CubeProfile, metric: str = M.COMP) -> dict:
    """Imbalance statistics of ``metric`` over locations.

    Returns ``{max, mean, imbalance}`` where ``imbalance = max/mean - 1``
    (0 for perfect balance) -- the first number an analyst derives from
    the system-tree dimension.
    """
    by_loc = profile.by_location(metric)
    if not by_loc:
        return {"max": 0.0, "mean": 0.0, "imbalance": 0.0}
    values = list(by_loc.values())
    mx = max(values)
    mean = sum(values) / len(values)
    return {
        "max": mx,
        "mean": mean,
        "imbalance": (mx / mean - 1.0) if mean > 0 else 0.0,
    }


def _metric_line(profile: CubeProfile, name: str, label: str, depth: int) -> Optional[str]:
    pct = profile.percent_of_time(name)
    return f"{'  ' * depth}{label:<28} {pct:6.1f} %T"


def render_report(
    profile: CubeProfile,
    top: int = 5,
    focus_metrics: Optional[Sequence[str]] = None,
) -> str:
    """Full text report: metric severities, hot call paths, balance."""
    lines: List[str] = []
    mode = profile.mode or "?"
    lines.append(f"=== Analysis report (clock: {mode}) ===")
    lines.append("")

    # --- metric tree with %T severities -------------------------------
    total = profile.total_time()
    lines.append(f"time{'':<24} {100.0 if total > 0 else 0.0:6.1f} %T")
    groups = [
        (M.COMP, "comp", 1),
        (None, "mpi", 1),
        (M.MPI_P2P_LATESENDER, "p2p latesender", 2),
        (M.MPI_P2P_LATERECEIVER, "p2p latereceiver", 2),
        (M.MPI_P2P_REST, "p2p rest", 2),
        (M.MPI_COLL_WAIT_NXN, "collective wait_nxn", 2),
        (M.MPI_COLL_WAIT_BARRIER, "collective wait_barrier", 2),
        (M.MPI_COLL_REST, "collective rest", 2),
        (None, "omp", 1),
        (M.OMP_MANAGEMENT, "management", 2),
        (M.OMP_BARRIER_WAIT, "barrier_wait", 2),
        (M.OMP_BARRIER_OVERHEAD, "barrier_overhead", 2),
        (M.IDLE_THREADS, "idle_threads", 1),
    ]
    mpi_pct = sum(profile.percent_of_time(m) for m in M.MPI_LEAVES)
    omp_pct = sum(profile.percent_of_time(m) for m in M.OMP_LEAVES)
    for metric, label, depth in groups:
        if metric is None:
            pct = mpi_pct if label == "mpi" else omp_pct
            lines.append(f"{'  ' * depth}{label:<28} {pct:6.1f} %T")
        else:
            lines.append(_metric_line(profile, metric, label, depth))
    lines.append("")

    # --- hot call paths -------------------------------------------------
    focus = list(focus_metrics) if focus_metrics is not None else [
        M.COMP, M.MPI_COLL_WAIT_NXN, M.MPI_P2P_LATESENDER, M.IDLE_THREADS,
        M.DELAY_N2N,
    ]
    for metric in focus:
        rows = top_callpaths(profile, metric, limit=top)
        if not rows:
            continue
        lines.append(f"top call paths for {metric}:")
        for path, share in rows:
            lines.append(f"  {share:5.1f} %M  {path}")
        lines.append("")

    # --- load balance -----------------------------------------------------
    bal = load_balance_summary(profile)
    lines.append(
        f"computation balance over {profile.system.n_locations} locations: "
        f"max/mean = {1.0 + bal['imbalance']:.2f}"
    )
    return "\n".join(lines)
