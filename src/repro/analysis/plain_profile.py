"""Plain call-path profiling (no wait-state analysis).

The paper reconciles an apparent contradiction with Ritter, Tarraf et
al. ("Conquering noise with hardware counters on HPC systems"): that
work found instruction counters *less* noisy than run time, while the
paper's lt_hwctr Jaccard floors are *lower* than tsc's.  The explanation
(Sec. V-B): "their evaluation is concerned with plain profiles recording
the total time/total counter per call path, whereas our evaluation also
includes the additional metrics from Scalasca's wait state analysis.
Our findings indicate that wait state analysis is influenced differently
by noise than plain profiling."

This module provides exactly that plain profile -- total clock units per
(call path, location), one metric, no patterns -- so the claim can be
tested on our substrate (see ``benchmarks/test_ablations.py``).
"""

from __future__ import annotations

from typing import List

from repro.clocks.base import TimestampedTrace
from repro.cube.profile import CubeProfile
from repro.cube.systemtree import SystemTree
from repro.sim.events import BURST, ENTER, LEAVE, OBAR_ENTER, OBAR_LEAVE, TEAM_BEGIN

__all__ = ["plain_profile", "PLAIN_TIME"]

#: the single metric of a plain profile
PLAIN_TIME = "time"


def plain_profile(tt: TimestampedTrace) -> CubeProfile:
    """Exclusive time per (call path, location), and nothing else.

    Worker idle gaps between parallel regions are skipped (a plain
    Score-P profile records them under the idle thread's own root, which
    does not affect per-call-path noise comparisons).
    """
    trace = tt.trace
    ts = tt.times
    regions = trace.regions
    system = SystemTree(trace.locations)
    profile = CubeProfile(system, (PLAIN_TIME,), mode=tt.mode, meta={"plain": True})
    ct = profile.calltree
    root = ct.intern(())

    names: List[str] = [regions.name(r) for r in range(len(regions))]

    for loc, evs in enumerate(trace.events):
        cp_stack = [root]
        path_stack = [()]
        last_t = None
        idle = trace.locations[loc][1] != 0  # workers start idle
        arr = ts[loc]
        for i, ev in enumerate(evs):
            t = arr[i]
            if last_t is not None and not idle:
                dt = t - last_t
                if dt > 0.0:
                    if ev.etype == BURST:
                        child = ct.intern(path_stack[-1] + (names[ev.region],))
                        profile.add_id(PLAIN_TIME, child, loc, dt)
                    else:
                        profile.add_id(PLAIN_TIME, cp_stack[-1], loc, dt)
            last_t = t
            et = ev.etype
            if et in (ENTER, OBAR_ENTER):
                path = path_stack[-1] + (names[ev.region],)
                path_stack.append(path)
                cp_stack.append(ct.intern(path))
            elif et in (LEAVE, OBAR_LEAVE):
                if len(cp_stack) > 1:
                    cp_stack.pop()
                    path_stack.pop()
                if et == OBAR_LEAVE and trace.locations[loc][1] != 0:
                    idle = True
            elif et == TEAM_BEGIN:
                idle = False
                # workers restart under the fork call path root; plain
                # profiles key by region names only, so keep the current
                # (empty) base -- attribution stays per-region.
                cp_stack = [root]
                path_stack = [()]
    return profile
